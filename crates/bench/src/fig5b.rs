//! Fig. 5b: offload-cost amortization — efficiency w.r.t. the ideal
//! accelerator as the number of benchmark iterations per offload grows,
//! with and without double buffering.

use ulp_mcu::datasheet;
use ulp_offload::{HetSystem, HetSystemConfig, OffloadCost, OffloadOptions};
use ulp_power::{busy_activity, PulpPowerModel};

use crate::fig5a::LINK_IDLE_WATTS;
use crate::render_table;
use ulp_kernels::{Benchmark, TargetEnv};

/// MCU frequencies swept (Hz) — the paper's observation: at 16/26 MHz the
/// link keeps up and efficiency converges to ≈1; at low clocks it
/// plateaus because the SPI clock follows the MCU clock.
pub const MCU_FREQS_HZ: [f64; 5] = [2.0e6, 4.0e6, 8.0e6, 16.0e6, 26.0e6];

/// Iterations-per-offload sweep (powers of two, as in the paper's x axis).
pub const ITERATIONS: [usize; 10] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512];

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Fig5bRow {
    /// Benchmark name.
    pub benchmark: String,
    /// MCU (and therefore SPI) clock.
    pub mcu_freq_hz: f64,
    /// Iterations per offload.
    pub iterations: usize,
    /// Efficiency w.r.t. compute-only ideal, sequential transfers.
    pub efficiency: f64,
    /// Efficiency with double buffering.
    pub efficiency_db: f64,
}

/// Builds the heterogeneous system for one MCU frequency: the accelerator
/// operating point is the Fig. 5a envelope solution at that host clock.
#[must_use]
pub fn system_at(mcu_freq_hz: f64) -> HetSystem {
    let power = PulpPowerModel::pulp3();
    let mcu = datasheet::stm32l476();
    let residual = 10.0e-3 - mcu.run_power_w(mcu_freq_hz) - LINK_IDLE_WATTS;
    let op = power
        .max_freq_under_power(residual, &busy_activity(4, 8))
        .expect("every swept frequency leaves budget for the accelerator");
    HetSystem::new(HetSystemConfig {
        mcu,
        mcu_freq_hz,
        pulp_vdd: op.vdd,
        pulp_freq_hz: op.freq_hz,
        ..HetSystemConfig::default()
    })
}

/// Measures each benchmark's offload cost once, then sweeps frequencies
/// and iteration counts analytically.
#[must_use]
pub fn compute(benchmarks: &[Benchmark]) -> Vec<Fig5bRow> {
    // Costs (cycles, bytes) are independent of the operating point.
    let mut reference_sys = HetSystem::new(HetSystemConfig::default());
    let costs: Vec<(Benchmark, OffloadCost)> = benchmarks
        .iter()
        .map(|b| {
            let build = b.build(&TargetEnv::pulp_parallel());
            let cost = reference_sys
                .measure_cost(&build)
                .expect("benchmark offloads");
            (*b, cost)
        })
        .collect();

    let mut rows = Vec::new();
    for f in MCU_FREQS_HZ {
        let sys = system_at(f);
        for (b, cost) in &costs {
            for iters in ITERATIONS {
                let seq = sys.predict(
                    cost,
                    &OffloadOptions {
                        iterations: iters,
                        ..Default::default()
                    },
                    true,
                );
                let db = sys.predict(
                    cost,
                    &OffloadOptions {
                        iterations: iters,
                        double_buffer: true,
                        ..Default::default()
                    },
                    true,
                );
                rows.push(Fig5bRow {
                    benchmark: b.name().to_owned(),
                    mcu_freq_hz: f,
                    iterations: iters,
                    efficiency: seq.efficiency(),
                    efficiency_db: db.efficiency(),
                });
            }
        }
    }
    rows
}

/// Renders the Fig. 5b table (per benchmark, efficiency by iteration count
/// for each MCU frequency).
#[must_use]
pub fn render(rows: &[Fig5bRow]) -> String {
    let mut out = String::from(
        "Fig. 5b — efficiency w.r.t. ideal (compute-only) accelerator when\n\
         amortizing the offload over more iterations; `+db` = double buffering\n\n",
    );
    let mut table = Vec::new();
    for r in rows {
        table.push(vec![
            r.benchmark.clone(),
            format!("{:.0}", r.mcu_freq_hz / 1e6),
            r.iterations.to_string(),
            format!("{:.3}", r.efficiency),
            format!("{:.3}", r.efficiency_db),
        ]);
    }
    out.push_str(&render_table(
        &["benchmark", "MCU MHz", "iters", "eff", "eff +db"],
        &table,
    ));
    out
}

/// Runs the sweep over a compact benchmark subset and renders it.
#[must_use]
pub fn run() -> String {
    let rows = compute(&[
        Benchmark::MatMul,
        Benchmark::SvmRbf,
        Benchmark::Cnn,
        Benchmark::Hog,
    ]);
    render(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_for(b: Benchmark) -> Vec<Fig5bRow> {
        compute(&[b])
    }

    fn eff(rows: &[Fig5bRow], mhz: f64, iters: usize) -> f64 {
        rows.iter()
            .find(|r| (r.mcu_freq_hz - mhz * 1e6).abs() < 1.0 && r.iterations == iters)
            .unwrap()
            .efficiency
    }

    #[test]
    fn efficiency_monotone_in_iterations() {
        let rows = rows_for(Benchmark::Cnn);
        for mhz in [2.0, 16.0, 26.0] {
            let mut prev = 0.0;
            for it in ITERATIONS {
                let e = eff(&rows, mhz, it);
                assert!(e >= prev, "efficiency dropped at {mhz} MHz, {it} iters");
                prev = e;
            }
        }
    }

    #[test]
    fn cnn_converges_at_fast_clocks() {
        // CNN moves only 2 kB per iteration: at the fast host clocks the
        // binary offload amortizes by 32 iterations and efficiency
        // approaches its ceiling (the paper: "full efficiency can be
        // reached after as few as 32 iterations" at 16/26 MHz).
        let rows = rows_for(Benchmark::Cnn);
        let e16_32 = eff(&rows, 16.0, 32);
        let e26_32 = eff(&rows, 26.0, 32);
        assert!(e16_32 > 0.6, "16 MHz/32 iters: {e16_32:.3}");
        assert!(e26_32 > 0.75, "26 MHz/32 iters: {e26_32:.3}");
        // 32 iterations already capture ≥95 % of the 512-iteration ceiling.
        assert!(e16_32 > 0.95 * eff(&rows, 16.0, 512));
        assert!(eff(&rows, 16.0, 1) < e16_32);
    }

    #[test]
    fn slow_clock_plateaus_below_fast_clock() {
        // The SPI clock follows the MCU clock: at 2 MHz the link bound
        // caps efficiency below the 26 MHz ceiling even at 512 iterations.
        let rows = rows_for(Benchmark::MatMul);
        let slow = eff(&rows, 2.0, 512);
        let fast = eff(&rows, 26.0, 512);
        assert!(
            slow < fast,
            "2 MHz plateau ({slow:.3}) must sit below the 26 MHz ceiling ({fast:.3})"
        );
    }

    #[test]
    fn double_buffering_never_hurts_and_helps_data_heavy() {
        let rows = rows_for(Benchmark::MatMul);
        for r in &rows {
            assert!(r.efficiency_db >= r.efficiency - 1e-12);
        }
        // matmul moves 12 kB per iteration: double buffering must visibly
        // help at moderate clocks.
        let seq = rows
            .iter()
            .find(|r| (r.mcu_freq_hz - 16.0e6).abs() < 1.0 && r.iterations == 64)
            .unwrap();
        assert!(
            seq.efficiency_db > seq.efficiency * 1.15,
            "db {:.3} vs seq {:.3}",
            seq.efficiency_db,
            seq.efficiency
        );
    }
}
