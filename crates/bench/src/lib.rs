//! # ulp-bench — experiment harness for the DATE'16 evaluation
//!
//! Regenerates every table and figure of the paper's §IV from simulation:
//!
//! | artifact | module | binary |
//! |---|---|---|
//! | Table I  (benchmark summary)            | [`table1`] | `cargo run --bin table1` |
//! | Fig. 3   (matmul energy efficiency)     | [`fig3`]   | `cargo run --bin fig3` |
//! | Fig. 4   (architectural & parallel speedup) | [`fig4`] | `cargo run --bin fig4` |
//! | Fig. 5a  (speedup in a 10 mW envelope)  | [`fig5a`]  | `cargo run --bin fig5a` |
//! | Fig. 5b  (offload amortization)         | [`fig5b`]  | `cargo run --bin fig5b` |
//! | ablations (design-choice studies)       | [`ablation`] | `cargo run --bin ablations` |
//! | §V extensions (beyond the paper)        | [`extensions`] | `cargo run --bin extensions` |
//! | core-count scaling study                | [`scaling`] | `cargo run --bin scaling` |
//! | fault-injection resilience study        | [`faults`] | `cargo run --bin faults` |
//! | pipelined-offload study                 | [`pipeline`] | `cargo run --bin pipeline_table` |
//! | serving-layer batching study            | [`serve`]  | `cargo run --bin serve` |
//! | chaos soak study (million-request)      | [`soak`]   | `cargo run --bin soak` |
//! | fleet study (sharded groups, autoscale) | [`fleet`]  | `cargo run --bin fleet` |
//! | simulator wall-clock perf tracking      | [`simperf`] | `cargo run --bin simperf` |
//!
//! `cargo run --bin all_experiments` prints everything (the source of
//! `EXPERIMENTS.md`). Absolute numbers come from the calibrated models
//! described in `DESIGN.md`; the claims under test are the *shapes*: who
//! wins, by what factor, where the crossovers sit.

pub mod ablation;
pub mod extensions;
pub mod faults;
pub mod fig3;
pub mod fig4;
pub mod fig5a;
pub mod fig5b;
pub mod fleet;
pub mod measure;
pub mod pipeline;
pub mod scaling;
pub mod serve;
pub mod simperf;
pub mod soak;
pub mod table1;

/// Consumes a leading `--jobs N` / `--jobs=N` pair from the process
/// arguments, installs it via [`ulp_par::set_jobs`], and returns the
/// remaining arguments. Shared by the experiment binaries so every sweep
/// entry point accepts the same flag.
///
/// # Panics
///
/// Panics (with a usage message) when `--jobs` is present without a valid
/// positive integer.
#[must_use]
pub fn init_jobs_from_args() -> Vec<String> {
    let mut rest = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            let n = args
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .expect("--jobs requires a positive integer");
            ulp_par::set_jobs(Some(n));
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            let n = v
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .expect("--jobs requires a positive integer");
            ulp_par::set_jobs(Some(n));
        } else {
            rest.push(arg);
        }
    }
    rest
}

/// Renders an aligned plain-text table (header + rows).
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        line.trim_end().to_owned()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }
}
