//! Simulator wall-clock performance tracking — the source of
//! `BENCH_simulator.json`.
//!
//! Unlike every other module in this crate, the quantity under test here is
//! not a *simulated* number but the cost of producing it: host seconds per
//! evaluation suite and *simulated MIPS* (retired target instructions per
//! host second). Two caveats shape the design:
//!
//! * **Host noise.** The CI and evaluation hosts are shared, so wall-clock
//!   readings swing by tens of percent run-to-run. We therefore measure
//!   **process CPU time** (user + sys, immune to steal and scheduling) and
//!   take the minimum of several repetitions, interleaving the engines
//!   being compared so slow drift hits both equally.
//! * **Apples to apples.** The only comparison made in-process — and thus
//!   the only defensible ratio — is engine vs engine (reference, turbo,
//!   micro-op) on the same build and the same host state. The pre-PR
//!   baseline seconds are
//!   recorded in the report for context, but they were captured on a
//!   different checkout and host state, so ratios against them are
//!   informational only.

/// Process CPU seconds (user + sys) consumed so far. On Linux this reads
/// `/proc/self/stat` (steal-immune); elsewhere it falls back to wall time
/// since first call, which still yields valid deltas.
#[must_use]
pub fn cpu_seconds() -> f64 {
    if let Some(s) = proc_stat_cpu_seconds() {
        return s;
    }
    use std::sync::OnceLock;
    use std::time::Instant;
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_secs_f64()
}

fn proc_stat_cpu_seconds() -> Option<f64> {
    // Fields after the ")" comm terminator: state ppid pgrp session tty_nr
    // tpgid flags minflt cminflt majflt cmajflt utime stime ... — so utime
    // and stime are at indices 11 and 12, in clock ticks (100 Hz).
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    let after = stat.rsplit(") ").next()?;
    let fields: Vec<&str> = after.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some((utime + stime) as f64 / 100.0)
}

/// One timed evaluation suite.
#[derive(Clone, Debug)]
pub struct SuitePerf {
    /// Suite name (matches the binary that normally renders it).
    pub name: &'static str,
    /// Process CPU seconds consumed by one run of the suite.
    pub host_cpu_seconds: f64,
    /// Target instructions retired during the run.
    pub retired: u64,
    /// Simulated MIPS: retired target instructions per host CPU second.
    pub simulated_mips: f64,
}

/// Runs `suite` once, metering CPU seconds and the retired-instruction
/// delta from [`ulp_isa::perf`]. The rendered output is discarded (its
/// length is black-boxed so the render cannot be optimised away).
pub fn time_suite(name: &'static str, suite: impl FnOnce() -> String) -> SuitePerf {
    let retired_before = ulp_isa::perf::retired_total();
    let t0 = cpu_seconds();
    let output = suite();
    let host_cpu_seconds = cpu_seconds() - t0;
    let retired = ulp_isa::perf::retired_total() - retired_before;
    std::hint::black_box(output.len());
    SuitePerf {
        name,
        host_cpu_seconds,
        retired,
        simulated_mips: retired as f64 / host_cpu_seconds.max(1e-9) / 1e6,
    }
}

/// In-process engine comparison: a fixed workload under each of the four
/// cluster engines (reference, turbo, micro-op, epoch), interleaved,
/// min-of-`reps` CPU seconds each. This is the defensible speedup number —
/// same build, same host state, only the engine differs.
#[derive(Clone, Debug)]
pub struct EngineComparison {
    /// Human description of the timed workload (rendered in the report).
    pub workload: &'static str,
    /// Repetitions per engine (minimum is reported).
    pub reps: usize,
    /// Best-of-reps CPU seconds for the reference engine.
    pub reference_cpu_seconds: f64,
    /// Best-of-reps CPU seconds for the turbo engine.
    pub turbo_cpu_seconds: f64,
    /// Best-of-reps CPU seconds for the micro-op block engine.
    pub microop_cpu_seconds: f64,
    /// Best-of-reps CPU seconds for the speculative epoch engine.
    pub epoch_cpu_seconds: f64,
}

impl EngineComparison {
    /// Reference time over turbo time (> 1 means turbo is faster).
    #[must_use]
    pub fn turbo_speedup(&self) -> f64 {
        self.reference_cpu_seconds / self.turbo_cpu_seconds.max(1e-9)
    }

    /// Reference time over micro-op time (> 1 means micro-op is faster).
    #[must_use]
    pub fn microop_speedup(&self) -> f64 {
        self.reference_cpu_seconds / self.microop_cpu_seconds.max(1e-9)
    }

    /// Reference time over epoch time (> 1 means epoch is faster).
    #[must_use]
    pub fn epoch_speedup(&self) -> f64 {
        self.reference_cpu_seconds / self.epoch_cpu_seconds.max(1e-9)
    }

    /// Micro-op time over epoch time: what speculation buys on top of
    /// block replay (> 1 means epoch is faster than micro-op).
    #[must_use]
    pub fn epoch_over_microop(&self) -> f64 {
        self.microop_cpu_seconds / self.epoch_cpu_seconds.max(1e-9)
    }
}

/// The full engine-comparison workload: every benchmark on the M4 flat
/// host and the two cluster targets — the same flat/cluster mix `table1`
/// itself simulates. Flat hosts stopped being engine-independent when the
/// micro-op block engine landed ([`ulp_isa::Core::run`] replays blocks on
/// flat cores too), so the sweep covers both paths.
fn engine_sweep() {
    use ulp_kernels::TargetEnv;
    for env in [
        TargetEnv::host_m4(),
        TargetEnv::pulp_single(),
        TargetEnv::pulp_parallel(),
    ] {
        env_sweep(&env);
    }
}

/// The quad-core cell: every benchmark on `pulp_parallel` only, three
/// passes per timed measurement — one pass is ~0.2 CPU-seconds, short
/// enough that the 10 ms granularity of the process CPU clock moves the
/// engine ratio by several percent. Tracked as its own pinned number
/// because the full sweep averages the multi-core floor away behind the
/// single-core targets.
fn engine_sweep_quad() {
    for _ in 0..3 {
        env_sweep(&ulp_kernels::TargetEnv::pulp_parallel());
    }
}

fn env_sweep(env: &ulp_kernels::TargetEnv) {
    use ulp_kernels::{runner, Benchmark};
    for b in Benchmark::ALL {
        let build = b.build(env);
        let r = runner::run(&build, env).unwrap_or_else(|e| panic!("{} failed: {e}", build.name));
        std::hint::black_box(r.cycles);
    }
}

fn compare_engines_on(
    workload: &'static str,
    sweep: fn(),
    reps: usize,
    restore: ulp_cluster::Engine,
) -> EngineComparison {
    // Interleave the engines so slow host drift biases none of them.
    let mut best = [f64::INFINITY; 4];
    for _ in 0..reps.max(1) {
        for (slot, engine) in ulp_cluster::Engine::ALL.into_iter().enumerate() {
            ulp_cluster::set_default_engine(engine);
            let t0 = cpu_seconds();
            sweep();
            best[slot] = best[slot].min(cpu_seconds() - t0);
        }
    }
    ulp_cluster::set_default_engine(restore);
    EngineComparison {
        workload,
        reps: reps.max(1),
        reference_cpu_seconds: best[0],
        turbo_cpu_seconds: best[1],
        microop_cpu_seconds: best[2],
        epoch_cpu_seconds: best[3],
    }
}

/// Runs the full-sweep engine comparison. Toggles the process-wide
/// default engine around each sweep (restored to `restore` on exit), so
/// it must not race with concurrent simulations outside this call.
#[must_use]
pub fn compare_engines(reps: usize, restore: ulp_cluster::Engine) -> EngineComparison {
    compare_engines_on(
        "engine sweep (10 benchmarks x host_m4+pulp_single+pulp_parallel)",
        engine_sweep,
        reps,
        restore,
    )
}

/// Runs the quad-core `pulp_parallel`-only engine comparison — the cell
/// the epoch engine exists to lift. Same toggling caveat as
/// [`compare_engines`].
#[must_use]
pub fn compare_engines_quad(reps: usize, restore: ulp_cluster::Engine) -> EngineComparison {
    compare_engines_on(
        "quad-core cell (10 benchmarks x pulp_parallel)",
        engine_sweep_quad,
        reps,
        restore,
    )
}

/// Peak interpreter throughput per engine: simulated MIPS on a dense
/// arithmetic/memory loop run on a flat M4 core. This isolates the
/// engine's own hot loop from kernel build/verify overhead and from
/// cluster-parallel arbitration (whose exact (time, index) interleaving
/// bounds batch sizes regardless of engine), both of which dilute the
/// end-to-end sweep ratio in [`EngineComparison`].
#[derive(Clone, Debug)]
pub struct CorePeak {
    /// Best-of-reps simulated MIPS through the reference step loop.
    pub reference_mips: f64,
    /// Best-of-reps simulated MIPS through the micro-op block engine.
    pub microop_mips: f64,
}

impl CorePeak {
    /// Micro-op MIPS over reference MIPS (> 1 means micro-op is faster).
    #[must_use]
    pub fn microop_speedup(&self) -> f64 {
        self.microop_mips / self.reference_mips.max(1e-9)
    }
}

/// Measures [`CorePeak`]: a 20M-instruction dense ALU loop on a flat M4
/// core, best-of-`reps` per engine, interleaved like
/// [`compare_engines`]. Timed with the wall clock rather than CPU ticks:
/// one run is tens of milliseconds, below the 10 ms granularity of
/// `/proc/self/stat`, and taking the best of several reps sheds
/// scheduling noise the same way the minimum CPU time does.
#[must_use]
pub fn core_peak(reps: usize) -> CorePeak {
    use std::time::Instant;
    use ulp_isa::prelude::*;
    use ulp_isa::{Core, CoreModel, FlatMemory};

    // 2M iterations x 10 instructions of straight-line ALU work plus the
    // loop branch: no data memory traffic, so the engines' own dispatch
    // and retire paths are all that is being timed — the load/store and
    // arbitration models are shared between engines and would only add a
    // common constant.
    let mut a = Asm::new();
    a.li(R9, 2_000_000);
    let top = a.new_label();
    a.bind(top);
    a.add(R1, R2, R3);
    a.sub(R4, R4, R3);
    a.sub(R5, R5, R1);
    a.add(R6, R1, R4);
    a.slli(R7, R6, 1);
    a.srli(R8, R6, 2);
    a.add(R11, R7, R8);
    a.sub(R12, R11, R1);
    a.addi(R9, R9, -1);
    a.bne(R9, R0, top);
    a.halt();
    let prog = a.finish().expect("core_peak loop assembles");

    let mut best = [0.0f64; 2];
    for _ in 0..reps.max(1) {
        for (slot, microop) in [false, true].into_iter().enumerate() {
            let mut mem = FlatMemory::new(0, 1 << 16);
            mem.load_program(&prog, 0).expect("program fits");
            let mut core = Core::new(0, CoreModel::cortex_m4());
            core.set_microop(microop);
            core.reset(0);
            let retired_before = ulp_isa::perf::retired_total();
            let t0 = Instant::now();
            core.run(&mut mem, u64::MAX).expect("loop halts");
            let secs = t0.elapsed().as_secs_f64();
            let retired = ulp_isa::perf::retired_total() - retired_before;
            let mips = retired as f64 / secs.max(1e-9) / 1e6;
            best[slot] = best[slot].max(mips);
        }
    }
    CorePeak {
        reference_mips: best[0],
        microop_mips: best[1],
    }
}

/// Pre-PR serial-engine reference timings, for context in the report.
/// Captured with `time cargo run --release --bin <suite>` on the commit
/// named below — a different checkout and host state than the in-process
/// numbers this module measures, so treat ratios against them as
/// informational, not as the engine speedup (that is [`EngineComparison`]).
pub const PRE_PR_BASELINE: &[(&str, f64)] = &[
    ("table1", 0.92),
    ("pipeline_table", 0.58),
    ("all_experiments", 2.77),
];

/// Commit the [`PRE_PR_BASELINE`] numbers were measured at.
pub const PRE_PR_BASELINE_REV: &str = "e2f45d3";

/// Full-sweep engine-comparison CPU seconds from the committed
/// `BENCH_simulator.json` this PR's epoch engine and resident-block
/// micro-optimisations (pre-sized micro-op vectors, reused scheduler key
/// array) replace. Rendered next to the fresh numbers so the report
/// records the delta, with the usual different-host-state caveat.
pub const PRE_PR_ENGINE_SECONDS: &[(&str, f64)] =
    &[("reference", 0.90), ("turbo", 0.88), ("microop", 0.59)];

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_comparison(out: &mut String, c: &EngineComparison, with_pre_pr: bool) {
    out.push_str(&format!(
        "    \"workload\": \"{}\",\n",
        json_escape(c.workload)
    ));
    out.push_str(&format!("    \"reps\": {},\n", c.reps));
    out.push_str(&format!(
        "    \"reference_cpu_seconds\": {:.4},\n",
        c.reference_cpu_seconds
    ));
    out.push_str(&format!(
        "    \"turbo_cpu_seconds\": {:.4},\n",
        c.turbo_cpu_seconds
    ));
    out.push_str(&format!(
        "    \"microop_cpu_seconds\": {:.4},\n",
        c.microop_cpu_seconds
    ));
    out.push_str(&format!(
        "    \"epoch_cpu_seconds\": {:.4},\n",
        c.epoch_cpu_seconds
    ));
    out.push_str(&format!(
        "    \"turbo_speedup\": {:.3},\n",
        c.turbo_speedup()
    ));
    out.push_str(&format!(
        "    \"microop_speedup\": {:.3},\n",
        c.microop_speedup()
    ));
    out.push_str(&format!(
        "    \"epoch_speedup\": {:.3},\n",
        c.epoch_speedup()
    ));
    if with_pre_pr {
        out.push_str(&format!(
            "    \"epoch_over_microop\": {:.3},\n",
            c.epoch_over_microop()
        ));
        out.push_str("    \"pre_pr_cpu_seconds\": {");
        for (i, (name, secs)) in PRE_PR_ENGINE_SECONDS.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {secs}", json_escape(name)));
        }
        out.push_str("}\n");
    } else {
        out.push_str(&format!(
            "    \"epoch_over_microop\": {:.3}\n",
            c.epoch_over_microop()
        ));
    }
}

/// Renders the full report as pretty-printed JSON (hand-rolled; the
/// workspace has no serde). Stable key order, two-space indent.
#[must_use]
pub fn render_json(
    suites: &[SuitePerf],
    comparison: Option<&EngineComparison>,
    quad: Option<&EngineComparison>,
    peak: Option<&CorePeak>,
    jobs: usize,
    engine: ulp_cluster::Engine,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"het-accel-simperf-v1\",\n");
    out.push_str("  \"time_basis\": \"process CPU seconds (user+sys)\",\n");
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"engine\": \"{}\",\n", engine.name()));
    out.push_str("  \"pre_pr_baseline\": {\n");
    out.push_str(&format!(
        "    \"rev\": \"{}\",\n",
        json_escape(PRE_PR_BASELINE_REV)
    ));
    out.push_str(
        "    \"note\": \"serial-engine wall-clock seconds from the pre-PR checkout; \
         different host state than the suites below — the in-process \
         engine_comparison is the defensible speedup\",\n",
    );
    out.push_str("    \"wall_seconds\": {");
    for (i, (name, secs)) in PRE_PR_BASELINE.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {secs}", json_escape(name)));
    }
    out.push_str("}\n  },\n");
    out.push_str("  \"suites\": [\n");
    for (i, s) in suites.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!(
            "\"name\": \"{}\", \"host_cpu_seconds\": {:.4}, \
             \"retired_instructions\": {}, \"simulated_mips\": {:.2}",
            json_escape(s.name),
            s.host_cpu_seconds,
            s.retired,
            s.simulated_mips
        ));
        out.push('}');
        if i + 1 < suites.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    let total_secs: f64 = suites.iter().map(|s| s.host_cpu_seconds).sum();
    let total_retired: u64 = suites.iter().map(|s| s.retired).sum();
    out.push_str(&format!("  \"total_cpu_seconds\": {total_secs:.4},\n"));
    out.push_str(&format!(
        "  \"total_retired_instructions\": {total_retired},\n"
    ));
    match comparison {
        Some(c) => {
            out.push_str("  \"engine_comparison\": {\n");
            render_comparison(&mut out, c, true);
            out.push_str("  },\n");
        }
        None => out.push_str("  \"engine_comparison\": null,\n"),
    }
    match quad {
        Some(c) => {
            out.push_str("  \"engine_comparison_quad\": {\n");
            render_comparison(&mut out, c, false);
            out.push_str("  },\n");
        }
        None => out.push_str("  \"engine_comparison_quad\": null,\n"),
    }
    match peak {
        Some(p) => {
            out.push_str("  \"core_peak\": {\n");
            out.push_str(
                "    \"workload\": \"20M-instruction dense ALU loop, \
                 flat M4 core, best-of-reps wall clock\",\n",
            );
            out.push_str(&format!(
                "    \"reference_mips\": {:.2},\n",
                p.reference_mips
            ));
            out.push_str(&format!("    \"microop_mips\": {:.2},\n", p.microop_mips));
            out.push_str(&format!(
                "    \"microop_speedup\": {:.3}\n",
                p.microop_speedup()
            ));
            out.push_str("  }\n");
        }
        None => out.push_str("  \"core_peak\": null\n"),
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_seconds_is_monotonic() {
        let a = cpu_seconds();
        // Burn a little CPU so the clock-tick counter has a chance to move.
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_add(i).rotate_left(7);
        }
        std::hint::black_box(x);
        let b = cpu_seconds();
        assert!(b >= a, "CPU clock went backwards: {a} -> {b}");
    }

    #[test]
    fn time_suite_meters_retired_instructions() {
        let perf = time_suite("probe", || {
            // Any simulation works; SvmLinear is small.
            let m = crate::measure::measure(ulp_kernels::Benchmark::SvmLinear);
            format!("{}", m.risc_ops)
        });
        assert!(perf.retired > 0, "simulation must retire instructions");
        assert!(perf.host_cpu_seconds >= 0.0);
        assert!(perf.simulated_mips >= 0.0);
    }

    #[test]
    fn report_is_valid_json_shape() {
        let suites = vec![SuitePerf {
            name: "table1",
            host_cpu_seconds: 1.25,
            retired: 42_000_000,
            simulated_mips: 33.6,
        }];
        let cmp = EngineComparison {
            workload: "full sweep",
            reps: 3,
            reference_cpu_seconds: 2.0,
            turbo_cpu_seconds: 1.0,
            microop_cpu_seconds: 0.25,
            epoch_cpu_seconds: 0.125,
        };
        let quad = EngineComparison {
            workload: "quad cell",
            reps: 3,
            reference_cpu_seconds: 4.0,
            turbo_cpu_seconds: 4.0,
            microop_cpu_seconds: 4.0,
            epoch_cpu_seconds: 2.0,
        };
        let peak = CorePeak {
            reference_mips: 50.0,
            microop_mips: 250.0,
        };
        let json = render_json(
            &suites,
            Some(&cmp),
            Some(&quad),
            Some(&peak),
            4,
            ulp_cluster::Engine::Epoch,
        );
        // Structural smoke checks (no JSON parser in the workspace).
        assert!(json.starts_with("{\n") && json.ends_with("}\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"engine\": \"epoch\""));
        assert!(json.contains("\"simulated_mips\": 33.60"));
        assert!(json.contains("\"turbo_speedup\": 2.000"));
        assert!(json.contains("\"microop_speedup\": 8.000"));
        assert!(json.contains("\"epoch_speedup\": 16.000"));
        assert!(json.contains("\"epoch_over_microop\": 2.000"));
        assert!(json.contains("\"workload\": \"quad cell\""));
        assert!(json.contains("\"pre_pr_cpu_seconds\": {\"reference\": 0.9"));
        assert!(json.contains("\"reference_mips\": 50.00"));
        assert!(json.contains("\"microop_speedup\": 5.000"));
        assert!(json.contains(PRE_PR_BASELINE_REV));
        let no_cmp = render_json(&suites, None, None, None, 1, ulp_cluster::Engine::Reference);
        assert!(no_cmp.contains("\"engine\": \"reference\""));
        assert!(no_cmp.contains("\"engine_comparison\": null"));
        assert!(no_cmp.contains("\"engine_comparison_quad\": null"));
        assert!(no_cmp.contains("\"core_peak\": null"));
    }
}
