//! Prints the paper's fig5b artifact from fresh simulation.

fn main() {
    println!("{}", ulp_bench::fig5b::run());
}
