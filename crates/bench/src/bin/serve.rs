//! Serving-layer batching study: runs the batched-vs-serial sweep
//! across pool sizes and the ten paper benchmarks, prints the table,
//! and optionally writes `BENCH_serve.json`.
//!
//! Usage: `serve [--jobs N] [--json PATH]`
//!
//! The study runs on the virtual clock, so the JSON is byte-identical
//! for every `--jobs` setting — `--jobs` only changes how many
//! scenarios simulate concurrently.

fn usage() -> ! {
    eprintln!("usage: serve [--jobs N] [--json PATH]");
    std::process::exit(2);
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut rest = ulp_bench::init_jobs_from_args().into_iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--json" => json_path = Some(rest.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let cells = ulp_bench::serve::study();
    print!("{}", ulp_bench::serve::render_table(&cells));
    if let Some(path) = json_path {
        let json = ulp_bench::serve::render_json(&cells);
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("serve: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("serve: wrote {path}");
    }
}
