//! Prints the core-count scaling study.

fn main() {
    println!("{}", ulp_bench::scaling::run());
}
