//! Prints the beyond-the-paper §V extension studies.

fn main() {
    println!("{}", ulp_bench::extensions::run());
}
