//! Chaos soak study: runs the calm-control and full-chaos endurance
//! cells (≥ 1 M seeded requests), prints the table, and optionally
//! writes `BENCH_soak.json`.
//!
//! Usage: `soak [--jobs N] [--json PATH]`
//!
//! The study runs on the virtual clock, so the JSON is byte-identical
//! for every `--jobs` setting — `--jobs` only changes whether the two
//! cells simulate concurrently. Exits non-zero if any invariant of
//! either cell is violated.

fn usage() -> ! {
    eprintln!("usage: soak [--jobs N] [--json PATH]");
    std::process::exit(2);
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut rest = ulp_bench::init_jobs_from_args().into_iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--json" => json_path = Some(rest.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let cells = ulp_bench::soak::study();
    print!("{}", ulp_bench::soak::render_table(&cells));
    if let Some(path) = json_path {
        let json = ulp_bench::soak::render_json(&cells);
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("soak: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("soak: wrote {path}");
    }
    let violations: Vec<&String> = cells
        .iter()
        .flat_map(|c| c.outcome.violations.iter())
        .collect();
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("soak: INVARIANT VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
