//! Prints the paper's fig3 artifact from fresh simulation.

fn main() {
    println!("{}", ulp_bench::fig3::run());
}
