//! Prints the paper's fig4 artifact from fresh simulation.

fn main() {
    println!("{}", ulp_bench::fig4::run());
}
