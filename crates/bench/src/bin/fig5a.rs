//! Prints the paper's fig5a artifact from fresh simulation.

fn main() {
    println!("{}", ulp_bench::fig5a::run());
}
