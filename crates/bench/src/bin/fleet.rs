//! Fleet-scale serving study: runs the 64/256/1024-worker autoscaled
//! fleet cells (≥ 1 M offered requests in total), prints the table, and
//! optionally writes `BENCH_fleet.json` and the autoscaler decision
//! log.
//!
//! Usage: `fleet [--jobs N] [--json PATH] [--scale-log PATH]`
//!
//! The study runs on the virtual clock, so the JSON and the decision
//! log are byte-identical for every `--jobs` setting — `--jobs` only
//! changes whether a fleet's node groups simulate concurrently. Exits
//! non-zero if any per-group or fleet-wide invariant is violated.

fn usage() -> ! {
    eprintln!("usage: fleet [--jobs N] [--json PATH] [--scale-log PATH]");
    std::process::exit(2);
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut log_path: Option<String> = None;
    let mut rest = ulp_bench::init_jobs_from_args().into_iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--json" => json_path = Some(rest.next().unwrap_or_else(|| usage())),
            "--scale-log" => log_path = Some(rest.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let cells = ulp_bench::fleet::study();
    print!("{}", ulp_bench::fleet::render_table(&cells));
    if let Some(path) = json_path {
        let json = ulp_bench::fleet::render_json(&cells);
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("fleet: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("fleet: wrote {path}");
    }
    if let Some(path) = log_path {
        let log = ulp_bench::fleet::render_decision_log(&cells);
        std::fs::write(&path, &log).unwrap_or_else(|e| {
            eprintln!("fleet: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("fleet: wrote {path}");
    }
    let violations: Vec<&String> = cells.iter().flat_map(|c| c.violations.iter()).collect();
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("fleet: INVARIANT VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
