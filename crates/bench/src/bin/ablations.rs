//! Prints the design-choice ablation studies.

fn main() {
    println!("{}", ulp_bench::ablation::run());
}
