//! Prints the pipelined-offload study (serialized vs pipelined per
//! benchmark) from fresh simulation.

fn main() {
    println!("{}", ulp_bench::pipeline::run());
}
