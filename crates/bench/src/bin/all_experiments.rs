//! Runs every experiment of the DATE'16 evaluation and prints the full
//! report (the source of `EXPERIMENTS.md`).
//!
//! Accepts `--jobs N` to bound the sweep's worker threads; the report is
//! byte-identical at any worker count.

fn main() {
    let rest = ulp_bench::init_jobs_from_args();
    assert!(rest.is_empty(), "usage: all_experiments [--jobs N]");
    let measurements = ulp_bench::measure::measure_all();
    println!("{}", ulp_bench::table1::render(&measurements));
    println!("{}", ulp_bench::fig3::run());
    println!("{}", ulp_bench::fig4::render(&measurements));
    println!(
        "{}",
        ulp_bench::fig5a::render(&ulp_bench::fig5a::compute(&measurements))
    );
    println!("{}", ulp_bench::fig5b::run());
    println!("{}", ulp_bench::ablation::run());
    println!("{}", ulp_bench::extensions::run());
    println!("{}", ulp_bench::scaling::run());
    println!("{}", ulp_bench::faults::run());
}
