//! Prints the paper's table1 artifact from fresh simulation.
//!
//! Accepts `--jobs N` to bound the sweep's worker threads; the output is
//! byte-identical at any worker count.

fn main() {
    let rest = ulp_bench::init_jobs_from_args();
    assert!(rest.is_empty(), "usage: table1 [--jobs N]");
    println!("{}", ulp_bench::table1::run());
}
