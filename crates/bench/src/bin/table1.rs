//! Prints the paper's table1 artifact from fresh simulation.

fn main() {
    println!("{}", ulp_bench::table1::run());
}
