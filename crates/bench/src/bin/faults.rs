//! Prints the fault-injection resilience study from fresh simulation.

fn main() {
    println!("{}", ulp_bench::faults::run());
}
