//! Simulator wall-clock performance tracker: times the evaluation suites,
//! meters simulated MIPS, runs the in-process four-way engine comparison
//! (reference vs turbo vs micro-op vs epoch, full sweep plus the
//! quad-core `pulp_parallel` cell), and writes `BENCH_simulator.json`.
//!
//! Usage: `simperf [--jobs N] [--out PATH] [--reps N]
//! [--engine reference|turbo|microop|epoch] [--no-turbo] [--skip-comparison]`

use ulp_bench::simperf::{self, SuitePerf};
use ulp_cluster::Engine;

fn usage() -> ! {
    eprintln!(
        "usage: simperf [--jobs N] [--out PATH] [--reps N] \
         [--engine reference|turbo|microop|epoch] [--no-turbo] [--skip-comparison]"
    );
    std::process::exit(2);
}

fn main() {
    let mut out_path = String::from("BENCH_simulator.json");
    let mut reps = 3usize;
    let mut engine = Engine::Epoch;
    let mut comparison_enabled = true;
    let mut rest = ulp_bench::init_jobs_from_args().into_iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--out" => out_path = rest.next().unwrap_or_else(|| usage()),
            "--reps" => {
                reps = rest
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--engine" => {
                engine = rest
                    .next()
                    .and_then(|v| Engine::from_name(&v))
                    .unwrap_or_else(|| usage());
            }
            "--no-turbo" => engine = Engine::Reference,
            "--skip-comparison" => comparison_enabled = false,
            _ => usage(),
        }
    }
    ulp_cluster::set_default_engine(engine);
    let jobs = ulp_par::effective_jobs();
    eprintln!("simperf: jobs={jobs} engine={} reps={reps}", engine.name());

    // Warm-up pass so one-time costs (page faults, lazy statics) don't
    // land on the first timed suite.
    std::hint::black_box(ulp_bench::table1::run().len());

    let mut suites: Vec<SuitePerf> = Vec::new();
    suites.push(simperf::time_suite("table1", ulp_bench::table1::run));
    suites.push(simperf::time_suite(
        "pipeline_table",
        ulp_bench::pipeline::run,
    ));
    suites.push(simperf::time_suite("all_experiments", || {
        let measurements = ulp_bench::measure::measure_all();
        let mut report = String::new();
        report.push_str(&ulp_bench::table1::render(&measurements));
        report.push_str(&ulp_bench::fig3::run());
        report.push_str(&ulp_bench::fig4::render(&measurements));
        report.push_str(&ulp_bench::fig5a::render(&ulp_bench::fig5a::compute(
            &measurements,
        )));
        report.push_str(&ulp_bench::fig5b::run());
        report.push_str(&ulp_bench::ablation::run());
        report.push_str(&ulp_bench::extensions::run());
        report.push_str(&ulp_bench::scaling::run());
        report.push_str(&ulp_bench::faults::run());
        report
    }));
    for s in &suites {
        eprintln!(
            "simperf: {:16} {:7.3} cpu-s  {:>12} retired  {:7.2} simulated MIPS",
            s.name, s.host_cpu_seconds, s.retired, s.simulated_mips
        );
    }

    let (comparison, quad, peak) = if comparison_enabled {
        let c = simperf::compare_engines(reps, engine);
        eprintln!(
            "simperf: engine comparison (min of {}): reference {:.3} cpu-s, turbo {:.3} cpu-s \
             ({:.3}x), microop {:.3} cpu-s ({:.3}x), epoch {:.3} cpu-s ({:.3}x)",
            c.reps,
            c.reference_cpu_seconds,
            c.turbo_cpu_seconds,
            c.turbo_speedup(),
            c.microop_cpu_seconds,
            c.microop_speedup(),
            c.epoch_cpu_seconds,
            c.epoch_speedup()
        );
        let q = simperf::compare_engines_quad(reps, engine);
        eprintln!(
            "simperf: quad-core cell (min of {}): reference {:.3} cpu-s, microop {:.3} cpu-s \
             ({:.3}x), epoch {:.3} cpu-s ({:.3}x, {:.3}x over microop)",
            q.reps,
            q.reference_cpu_seconds,
            q.microop_cpu_seconds,
            q.microop_speedup(),
            q.epoch_cpu_seconds,
            q.epoch_speedup(),
            q.epoch_over_microop()
        );
        let p = simperf::core_peak(reps);
        eprintln!(
            "simperf: core peak (best of {reps}): reference {:.2} MIPS, microop {:.2} MIPS \
             ({:.3}x)",
            p.reference_mips,
            p.microop_mips,
            p.microop_speedup()
        );
        (Some(c), Some(q), Some(p))
    } else {
        (None, None, None)
    };

    let json = simperf::render_json(
        &suites,
        comparison.as_ref(),
        quad.as_ref(),
        peak.as_ref(),
        jobs,
        engine,
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("simperf: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("simperf: wrote {out_path}");
    print!("{json}");
}
