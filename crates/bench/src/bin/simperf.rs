//! Simulator wall-clock performance tracker: times the evaluation suites,
//! meters simulated MIPS, runs the in-process turbo-vs-reference engine
//! comparison, and writes `BENCH_simulator.json`.
//!
//! Usage: `simperf [--jobs N] [--out PATH] [--reps N] [--no-turbo]
//! [--skip-comparison]`

use ulp_bench::simperf::{self, SuitePerf};

fn usage() -> ! {
    eprintln!("usage: simperf [--jobs N] [--out PATH] [--reps N] [--no-turbo] [--skip-comparison]");
    std::process::exit(2);
}

fn main() {
    let mut out_path = String::from("BENCH_simulator.json");
    let mut reps = 3usize;
    let mut turbo = true;
    let mut comparison_enabled = true;
    let mut rest = ulp_bench::init_jobs_from_args().into_iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--out" => out_path = rest.next().unwrap_or_else(|| usage()),
            "--reps" => {
                reps = rest
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--no-turbo" => turbo = false,
            "--skip-comparison" => comparison_enabled = false,
            _ => usage(),
        }
    }
    ulp_cluster::set_default_turbo(turbo);
    let jobs = ulp_par::effective_jobs();
    eprintln!("simperf: jobs={jobs} turbo={turbo} reps={reps}");

    // Warm-up pass so one-time costs (page faults, lazy statics) don't
    // land on the first timed suite.
    std::hint::black_box(ulp_bench::table1::run().len());

    let mut suites: Vec<SuitePerf> = Vec::new();
    suites.push(simperf::time_suite("table1", ulp_bench::table1::run));
    suites.push(simperf::time_suite(
        "pipeline_table",
        ulp_bench::pipeline::run,
    ));
    suites.push(simperf::time_suite("all_experiments", || {
        let measurements = ulp_bench::measure::measure_all();
        let mut report = String::new();
        report.push_str(&ulp_bench::table1::render(&measurements));
        report.push_str(&ulp_bench::fig3::run());
        report.push_str(&ulp_bench::fig4::render(&measurements));
        report.push_str(&ulp_bench::fig5a::render(&ulp_bench::fig5a::compute(
            &measurements,
        )));
        report.push_str(&ulp_bench::fig5b::run());
        report.push_str(&ulp_bench::ablation::run());
        report.push_str(&ulp_bench::extensions::run());
        report.push_str(&ulp_bench::scaling::run());
        report.push_str(&ulp_bench::faults::run());
        report
    }));
    for s in &suites {
        eprintln!(
            "simperf: {:16} {:7.3} cpu-s  {:>12} retired  {:7.2} simulated MIPS",
            s.name, s.host_cpu_seconds, s.retired, s.simulated_mips
        );
    }

    let comparison = if comparison_enabled {
        let c = simperf::compare_engines(reps, turbo);
        eprintln!(
            "simperf: engine comparison (min of {}): reference {:.3} cpu-s, turbo {:.3} cpu-s, speedup {:.3}x",
            c.reps,
            c.reference_cpu_seconds,
            c.turbo_cpu_seconds,
            c.speedup()
        );
        Some(c)
    } else {
        None
    };

    let json = simperf::render_json(&suites, comparison.as_ref(), jobs, turbo);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("simperf: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("simperf: wrote {out_path}");
    print!("{json}");
}
