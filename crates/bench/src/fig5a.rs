//! Fig. 5a: speedup achievable within a total 10 mW power envelope.

use ulp_mcu::datasheet;
use ulp_offload::envelope::{envelope_speedup, EnvelopeReport, PowerBudget};
use ulp_power::PulpPowerModel;

use crate::measure::{measure_all, Measurement};
use crate::render_table;

/// MCU operating frequencies of the sweep (Hz). Frequencies above 32 MHz
/// exceed the budget and are reported as the paper's "spending more than
/// the allotted 10 mW" bars.
pub const MCU_FREQS_HZ: [f64; 9] = [
    1.0e6, 2.0e6, 4.0e6, 8.0e6, 16.0e6, 26.0e6, 32.0e6, 48.0e6, 80.0e6,
];

/// Link power while mostly idle during compute (drivers quiescent).
pub const LINK_IDLE_WATTS: f64 = 20.0e-6;

/// One benchmark × MCU-frequency sweep point.
#[derive(Clone, Debug)]
pub struct Fig5aRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Envelope analysis at this MCU frequency.
    pub report: EnvelopeReport,
}

/// Computes the full sweep.
#[must_use]
pub fn compute(measurements: &[Measurement]) -> Vec<Fig5aRow> {
    let power = PulpPowerModel::pulp3();
    let budget = PowerBudget::default();
    let mcu = datasheet::stm32l476();
    let mut rows = Vec::new();
    for m in measurements {
        for f in MCU_FREQS_HZ {
            rows.push(Fig5aRow {
                benchmark: m.benchmark.name(),
                report: envelope_speedup(
                    &budget,
                    &mcu,
                    f,
                    &power,
                    &m.activity_quad,
                    m.cycles_m4,
                    m.cycles_quad,
                    m.risc_ops,
                    LINK_IDLE_WATTS,
                ),
            });
        }
    }
    rows
}

/// Peak accelerator speedup for a benchmark over the sweep.
#[must_use]
pub fn peak_speedup(rows: &[Fig5aRow], benchmark: &str) -> f64 {
    rows.iter()
        .filter(|r| r.benchmark == benchmark && r.report.mcu_within_budget)
        .filter_map(|r| r.report.pulp_speedup)
        .fold(0.0, f64::max)
}

/// Renders the Fig. 5a table.
#[must_use]
pub fn render(rows: &[Fig5aRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let rep = &r.report;
            vec![
                r.benchmark.to_owned(),
                format!("{:.0}", rep.mcu_freq_hz / 1e6),
                if rep.mcu_within_budget { "yes" } else { "OVER" }.to_owned(),
                format!("{:.2}", rep.mcu_speedup),
                rep.pulp_point
                    .map_or_else(|| "-".into(), |p| format!("{:.0}", p.freq_hz / 1e6)),
                rep.pulp_point
                    .map_or_else(|| "-".into(), |p| format!("{:.2}", p.vdd)),
                rep.pulp_speedup
                    .map_or_else(|| "-".into(), |s| format!("{s:.1}")),
                format!("{:.1}", rep.pulp_ops_per_cycle),
                format!("{:.2}", rep.mcu_ops_per_cycle),
            ]
        })
        .collect();
    let mut out = String::from(
        "Fig. 5a — speedup vs STM32-L476 @32 MHz within a 10 mW total envelope\n\
         (offload cost excluded, as in the paper; ops/cycle annotate the bars)\n\n",
    );
    out.push_str(&render_table(
        &[
            "benchmark",
            "MCU MHz",
            "in budget",
            "MCU ×",
            "PULP MHz",
            "VDD",
            "PULP ×",
            "ops/cy P",
            "ops/cy M",
        ],
        &table,
    ));
    out
}

/// Measures everything and renders Fig. 5a.
#[must_use]
pub fn run() -> String {
    let rows = compute(&measure_all());
    let mut out = render(&rows);
    let strassen = peak_speedup(&rows, "strassen");
    let hog = peak_speedup(&rows, "hog");
    out.push_str(&format!(
        "\npeak speedups: strassen {strassen:.0}× (paper ≈60×), hog {hog:.0}× \
         (paper ≈20×, worst case)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measure;
    use ulp_kernels::Benchmark;

    #[test]
    fn strassen_peak_near_paper_60x() {
        let rows = compute(&[measure(Benchmark::Strassen)]);
        let peak = peak_speedup(&rows, "strassen");
        assert!(
            (35.0..90.0).contains(&peak),
            "strassen peak {peak:.0}× vs paper ≈60×"
        );
    }

    #[test]
    fn fixed_point_benchmarks_exceed_25x() {
        for b in [Benchmark::MatMulFixed, Benchmark::SvmRbf, Benchmark::Cnn] {
            let rows = compute(&[measure(b)]);
            let peak = peak_speedup(&rows, b.name());
            assert!(peak > 20.0, "{b}: peak {peak:.0}× vs paper >25×");
        }
    }

    #[test]
    fn hog_is_worst_but_still_speeds_up() {
        let rows = compute(&[measure(Benchmark::Hog)]);
        let peak = peak_speedup(&rows, "hog");
        assert!(
            (8.0..35.0).contains(&peak),
            "hog peak {peak:.0}× vs paper ≈20×"
        );
    }

    #[test]
    fn speedup_decreases_with_mcu_frequency() {
        let rows = compute(&[measure(Benchmark::MatMul)]);
        let at = |mhz: f64| {
            rows.iter()
                .find(|r| (r.report.mcu_freq_hz - mhz * 1e6).abs() < 1.0)
                .and_then(|r| r.report.pulp_speedup)
                .unwrap_or(0.0)
        };
        assert!(at(1.0) > at(16.0));
        assert!(at(16.0) > at(26.0));
    }

    #[test]
    fn above_32mhz_flagged_over_budget() {
        let rows = compute(&[measure(Benchmark::MatMul)]);
        for r in &rows {
            if r.report.mcu_freq_hz > 33.0e6 {
                assert!(!r.report.mcu_within_budget);
            }
        }
    }
}
