//! Ablation studies for the design choices called out in `DESIGN.md`:
//! TCDM banking, the hardware barrier, instruction-cache sizing, and the
//! link width.

use ulp_cluster::{Cluster, ClusterConfig};
use ulp_kernels::runner::run_on_existing_cluster;
use ulp_kernels::{Benchmark, TargetEnv};
use ulp_link::SpiWidth;
use ulp_offload::{HetSystem, HetSystemConfig, OffloadOptions};

use crate::render_table;

/// Cycles and conflicts of a quad-core matmul as the TCDM bank count
/// varies ("word-level interleaving scheme to reduce access contention").
#[must_use]
pub fn tcdm_banking() -> Vec<(usize, u64, u64)> {
    let build = Benchmark::MatMul.build(&TargetEnv::pulp_parallel());
    [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&banks| {
            let mut cluster = Cluster::new(ClusterConfig {
                tcdm_banks: banks,
                ..ClusterConfig::default()
            });
            let r = run_on_existing_cluster(&build, &mut cluster)
                .unwrap_or_else(|e| panic!("banks={banks}: {e}"));
            let act = r.activity.expect("cluster activity");
            (banks, r.cycles, act.tcdm_conflicts)
        })
        .collect()
}

/// Parallel cycles of the barrier-heavy Strassen kernel as the barrier
/// release latency varies (HW synchronizer vs slow software barrier).
#[must_use]
pub fn barrier_latency() -> Vec<(u32, u64)> {
    let build = Benchmark::Strassen.build(&TargetEnv::pulp_parallel());
    [2u32, 10, 50, 200]
        .iter()
        .map(|&lat| {
            let mut cluster = Cluster::new(ClusterConfig {
                barrier_latency: lat,
                ..ClusterConfig::default()
            });
            let r = run_on_existing_cluster(&build, &mut cluster)
                .unwrap_or_else(|e| panic!("barrier={lat}: {e}"));
            (lat, r.cycles)
        })
        .collect()
}

/// CNN cycles as the shared instruction cache shrinks/grows.
#[must_use]
pub fn icache_size() -> Vec<(usize, u64, u64)> {
    let build = Benchmark::Cnn.build(&TargetEnv::pulp_parallel());
    [1024usize, 2048, 4096, 16384]
        .iter()
        .map(|&size| {
            let mut cluster = Cluster::new(ClusterConfig {
                icache_size: size,
                ..ClusterConfig::default()
            });
            let r = run_on_existing_cluster(&build, &mut cluster)
                .unwrap_or_else(|e| panic!("icache={size}: {e}"));
            let act = r.activity.expect("cluster activity");
            (size, r.cycles, act.icache_misses)
        })
        .collect()
}

/// Offload efficiency (16 iterations) with a single-bit SPI vs quad SPI.
#[must_use]
pub fn link_width() -> Vec<(SpiWidth, f64)> {
    let build = Benchmark::MatMul.build(&TargetEnv::pulp_parallel());
    [SpiWidth::Single, SpiWidth::Quad]
        .iter()
        .map(|&width| {
            let mut sys = HetSystem::new(HetSystemConfig {
                link_width: width,
                ..HetSystemConfig::default()
            });
            let rep = sys
                .offload(
                    &build,
                    &OffloadOptions {
                        iterations: 16,
                        ..Default::default()
                    },
                )
                .expect("offload succeeds");
            (width, rep.efficiency())
        })
        .collect()
}

/// On-cluster DMA double buffering (the §IV-B overlap, executed by
/// generated code through the memory-mapped DMA): sequential vs
/// overlapped cycles of the streaming kernel.
#[must_use]
pub fn dma_double_buffering() -> (u64, u64) {
    use ulp_kernels::streaming;
    let env = TargetEnv::pulp_single();
    let seq = ulp_kernels::runner::run(&streaming::build(&env, false), &env)
        .expect("sequential streaming runs");
    let db = ulp_kernels::runner::run(&streaming::build(&env, true), &env)
        .expect("double-buffered streaming runs");
    (seq.cycles, db.cycles)
}

/// Runs every ablation and renders the report.
#[must_use]
pub fn run() -> String {
    let mut out = String::from("Ablations — design choices of the platform\n");

    out.push_str("\n[1] TCDM banking (quad-core matmul):\n");
    let rows: Vec<Vec<String>> = tcdm_banking()
        .iter()
        .map(|(b, c, conf)| vec![b.to_string(), c.to_string(), conf.to_string()])
        .collect();
    out.push_str(&render_table(&["banks", "cycles", "conflicts"], &rows));

    out.push_str("\n[2] barrier release latency (strassen, 4 cores):\n");
    let rows: Vec<Vec<String>> = barrier_latency()
        .iter()
        .map(|(l, c)| vec![l.to_string(), c.to_string()])
        .collect();
    out.push_str(&render_table(&["latency cy", "cycles"], &rows));

    out.push_str("\n[3] shared instruction cache size (cnn, 4 cores):\n");
    let rows: Vec<Vec<String>> = icache_size()
        .iter()
        .map(|(s, c, m)| vec![format!("{} B", s), c.to_string(), m.to_string()])
        .collect();
    out.push_str(&render_table(&["I$ size", "cycles", "misses"], &rows));

    out.push_str("\n[4] on-cluster DMA double buffering (streaming kernel, 16 kB):\n");
    let (seq, db) = dma_double_buffering();
    let rows: Vec<Vec<String>> = vec![
        vec!["sequential".into(), seq.to_string()],
        vec!["double-buffered".into(), db.to_string()],
        vec![
            "overlap win".into(),
            format!("{:.1}%", (1.0 - db as f64 / seq as f64) * 100.0),
        ],
    ];
    out.push_str(&render_table(&["schedule", "cycles"], &rows));

    out.push_str("\n[5] link width (matmul offload, 16 iterations):\n");
    let rows: Vec<Vec<String>> = link_width()
        .iter()
        .map(|(w, e)| vec![w.to_string(), format!("{e:.3}")])
        .collect();
    out.push_str(&render_table(&["link", "efficiency"], &rows));

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_banks_fewer_conflicts() {
        let rows = tcdm_banking();
        let one = rows.iter().find(|(b, _, _)| *b == 1).unwrap();
        let eight = rows.iter().find(|(b, _, _)| *b == 8).unwrap();
        assert!(
            one.2 > eight.2 * 2,
            "1 bank ({}) must conflict far more than 8 ({})",
            one.2,
            eight.2
        );
        assert!(one.1 > eight.1, "single-bank run must be slower");
    }

    #[test]
    fn slow_barrier_costs_cycles() {
        let rows = barrier_latency();
        let fast = rows.first().unwrap().1;
        let slow = rows.last().unwrap().1;
        assert!(slow > fast, "200-cycle barriers must slow strassen down");
    }

    #[test]
    fn quad_spi_beats_single() {
        let rows = link_width();
        let single = rows[0].1;
        let quad = rows[1].1;
        assert!(quad > single, "quad {quad:.3} vs single {single:.3}");
    }
}
