//! Serving-layer study: batched vs serial dispatch across pool sizes,
//! rendered as a table and as `BENCH_serve.json`.
//!
//! For each paper benchmark the study builds a saturating two-tenant
//! workload in which that kernel is hot (about half the mix) and the
//! other nine share the rest, then serves the identical request stream
//! twice per pool size — once with per-request serial dispatch, once
//! with kernel-aware batching — and compares throughput. Everything
//! runs on the virtual clock, so the study (and its JSON) is a pure
//! function of the seed: byte-identical on every machine and under
//! every `--jobs` setting. The only wall-clock win `--jobs` buys is
//! that independent scenarios simulate in parallel.

use ulp_kernels::{Benchmark, TargetEnv};
use ulp_offload::HetSystemConfig;
use ulp_par::par_map;
use ulp_serve::{
    fmt_ms, BatchPolicy, CostBook, ServeConfig, ServePool, ServeReport, TenantLoad, TenantSpec,
    WorkloadSpec,
};

/// Pool sizes the study sweeps.
pub const POOLS: [usize; 3] = [1, 2, 4];
/// Largest batch a kernel-aware dispatch may carry.
pub const MAX_BATCH: usize = 32;
/// Workload seed (shared by every scenario).
pub const SEED: u64 = 20_260_807;
/// Requests each scenario aims to offer (sets the virtual duration).
const TARGET_REQUESTS: f64 = 1536.0;
/// Offered load as a multiple of the 4-worker serial capacity, so even
/// the largest pool stays saturated and throughput measures capacity.
const SATURATION: f64 = 4.0;

/// One (benchmark, pool) cell of the study.
#[derive(Clone, Debug)]
pub struct ServeCell {
    /// Hot kernel of the scenario.
    pub benchmark: Benchmark,
    /// Worker-pool size.
    pub pool: usize,
    /// Report of the serial per-request baseline.
    pub serial: ServeReport,
    /// Report of the kernel-aware batched run.
    pub batched: ServeReport,
}

impl ServeCell {
    /// Batched-over-serial throughput ratio.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        let s = self.serial.throughput_rps();
        if s > 0.0 {
            self.batched.throughput_rps() / s
        } else {
            1.0
        }
    }
}

/// The full sweep: `POOLS.len()` cells per paper benchmark, in
/// `Benchmark::ALL` × `POOLS` order.
#[must_use]
pub fn study() -> Vec<ServeCell> {
    let env = TargetEnv::pulp_parallel();
    let config = HetSystemConfig::default();
    let book = CostBook::measure(&env, &config, &Benchmark::ALL).expect("cost measurement");

    let mut scenarios: Vec<(Benchmark, usize)> = Vec::new();
    for &b in &Benchmark::ALL {
        for &pool in &POOLS {
            scenarios.push((b, pool));
        }
    }
    par_map(&scenarios, |_, &(benchmark, pool)| {
        let (tenants, requests) = scenario(&book, benchmark);
        let run = |cfg: ServeConfig| {
            ServePool::new(&config, tenants.clone(), book.clone(), cfg)
                .run(&requests)
                .expect("study workload fits the pool configuration")
        };
        // The serial baseline is the paper's blocking runtime: one
        // request per dispatch, no pipelined engine. The batched run is
        // the serving layer proper.
        ServeCell {
            benchmark,
            pool,
            serial: run(ServeConfig {
                pool,
                policy: BatchPolicy::Serial,
                pipeline: ulp_offload::PipelineConfig::default(),
                ..ServeConfig::default()
            }),
            batched: run(ServeConfig {
                pool,
                policy: BatchPolicy::KernelAware {
                    max_batch: MAX_BATCH,
                },
                ..ServeConfig::default()
            }),
        }
    })
}

/// The saturating two-tenant workload whose hot kernel is `hot`.
fn scenario(book: &CostBook, hot: Benchmark) -> (Vec<TenantSpec>, Vec<ulp_serve::ServeRequest>) {
    let mix: Vec<(Benchmark, f64)> = Benchmark::ALL
        .iter()
        .map(|&b| (b, if b == hot { 9.0 } else { 1.0 }))
        .collect();
    let mix_total: f64 = mix.iter().map(|(_, w)| *w).sum();
    let mean_ns: f64 = mix
        .iter()
        .map(|&(b, w)| book.est_ns(b, 1) as f64 * w / mix_total)
        .sum();
    let rate = SATURATION * POOLS[POOLS.len() - 1] as f64 * 1e9 / mean_ns;

    let mut app = TenantSpec::weighted("app", 2);
    app.queue_cap = 512;
    let mut bg = TenantSpec::new("bg");
    bg.queue_cap = 512;
    let tenants = vec![app.clone(), bg.clone()];

    let mk = |spec: TenantSpec, share: f64, class_mix: [f64; 3]| TenantLoad {
        spec,
        rate_rps: rate * share,
        kernel_mix: mix.clone(),
        class_mix,
        iterations: 1,
    };
    let workload = WorkloadSpec {
        seed: SEED,
        duration_ns: (TARGET_REQUESTS / rate * 1e9) as u64,
        tenants: vec![mk(app, 0.7, [0.3, 0.6, 0.1]), mk(bg, 0.3, [0.0, 0.5, 0.5])],
    };
    (tenants, workload.generate())
}

/// Plain-text study table (the golden `serve_table.txt` snapshot).
#[must_use]
pub fn render_table(cells: &[ServeCell]) -> String {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.benchmark.name().to_owned(),
                c.pool.to_string(),
                format!("{:.1}", c.serial.throughput_rps()),
                format!("{:.1}", c.batched.throughput_rps()),
                format!("{:.2}x", c.speedup()),
                format!("{:.2}", c.batched.mean_batch()),
                c.serial.uploads.to_string(),
                c.batched.uploads.to_string(),
                fmt_ms(c.batched.latency.p99_ns),
            ]
        })
        .collect();
    let mut out = String::from("Serving study: serial vs kernel-aware batched dispatch\n");
    out.push_str(&format!(
        "(saturating mixed-kernel load, max batch {MAX_BATCH}, seed {SEED})\n\n"
    ));
    out.push_str(&crate::render_table(
        &[
            "benchmark",
            "pool",
            "serial rps",
            "batched rps",
            "speedup",
            "mean batch",
            "uploads(s)",
            "uploads(b)",
            "p99 ms(b)",
        ],
        &rows,
    ));
    let wins = cells
        .iter()
        .filter(|c| c.pool == POOLS[POOLS.len() - 1] && c.speedup() >= 1.5)
        .count();
    out.push_str(&format!(
        "\nbatching >= 1.5x serial on {wins}/{} benchmarks at pool {}\n",
        Benchmark::ALL.len(),
        POOLS[POOLS.len() - 1],
    ));
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the committed `BENCH_serve.json`. Deliberately excludes the
/// `--jobs` setting and every other machine fact: the file is a claim
/// about the *model*, and must be byte-identical however it was
/// produced.
#[must_use]
pub fn render_json(cells: &[ServeCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"het-accel-serve-v1\",\n");
    out.push_str("  \"time_basis\": \"virtual nanoseconds (seeded, machine-independent)\",\n");
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"max_batch\": {MAX_BATCH},\n"));
    out.push_str(&format!(
        "  \"pools\": [{}],\n",
        POOLS.map(|p| p.to_string()).join(", ")
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!(
            "\"benchmark\": \"{}\", \"pool\": {}, ",
            json_escape(c.benchmark.name()),
            c.pool
        ));
        out.push_str(&format!(
            "\"serial_rps\": {:.3}, \"batched_rps\": {:.3}, \"speedup\": {:.3}, ",
            c.serial.throughput_rps(),
            c.batched.throughput_rps(),
            c.speedup()
        ));
        out.push_str(&format!(
            "\"mean_batch\": {:.3}, \"uploads_serial\": {}, \"uploads_batched\": {}, ",
            c.batched.mean_batch(),
            c.serial.uploads,
            c.batched.uploads
        ));
        out.push_str(&format!(
            "\"serial_p99_ms\": \"{}\", \"batched_p99_ms\": \"{}\", ",
            fmt_ms(c.serial.latency.p99_ns),
            fmt_ms(c.batched.latency.p99_ns)
        ));
        out.push_str(&format!(
            "\"completed_serial\": {}, \"completed_batched\": {}, \"rejected_serial\": {}, \"rejected_batched\": {}",
            c.serial.completed, c.batched.completed, c.serial.rejected, c.batched.rejected
        ));
        out.push_str(if i + 1 == cells.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ],\n");
    let top_pool = POOLS[POOLS.len() - 1];
    let wins = cells
        .iter()
        .filter(|c| c.pool == top_pool && c.speedup() >= 1.5)
        .count();
    out.push_str(&format!("  \"speedup_wins_at_pool_{top_pool}\": {wins}\n"));
    out.push_str("}\n");
    out
}

/// Runs the full study and returns the table (the `serve` binary's
/// stdout).
#[must_use]
pub fn run() -> String {
    render_table(&study())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
