//! Fleet-scale serving study: sharded node groups with per-group
//! autoscaling at 64, 256, and 1024 max workers, rendered as a table,
//! as `BENCH_fleet.json`, and as the pinned autoscaler decision log.
//!
//! Every cell runs the same three-phase workload shape, scaled to its
//! fleet: a light baseline (half the fleet's *minimum* capacity), an
//! 8× plateau covering the middle 40% of the run that pushes offered
//! load to the fleet's *maximum* capacity, and the light tail again.
//! The plateau forces every group to climb from its floor to its
//! ceiling; the tail makes it hand the workers back — so the study
//! exercises both autoscaler directions, admission pricing under real
//! pressure, and fleet-wide conservation, at ≥ 1 M offered requests
//! across the three cells.
//!
//! Everything runs on the virtual clock, so the study (and its JSON,
//! and the decision log) is a pure function of [`SEED`]: byte-identical
//! on every machine and under every `--jobs` setting. Group simulations
//! fan out with `ulp_par::par_map` inside [`Fleet::run`]; the cells
//! themselves run sequentially so the study never nests parallel maps.

use ulp_kernels::{Benchmark, TargetEnv};
use ulp_offload::HetSystemConfig;
use ulp_serve::{
    fmt_ms, invariants, render_scale_log, AdmissionPricing, AutoscalePolicy, BatchPolicy, Burst,
    CostBook, Fleet, FleetConfig, FleetReport, ServeConfig, TenantLoad, TenantSpec, WorkloadSpec,
};

/// Workload seed (the study's identity).
pub const SEED: u64 = 20_260_810;
/// Largest batch a kernel-aware dispatch may carry.
pub const MAX_BATCH: usize = 16;
/// Offered-rate multiplier of the plateau phase.
const PLATEAU_FACTOR: f64 = 8.0;
/// The plateau covers `[0.3, 0.7)` of the run.
const PLATEAU_START: f64 = 0.3;
const PLATEAU_END: f64 = 0.7;
/// Every cell simulates the same 20 s of virtual time, so one
/// autoscaler timescale (decision interval, cooldown) fits all three
/// fleet sizes; offered load then scales with the fleet.
const DURATION_NS: u64 = 20_000_000_000;
/// Autoscaler cooldown: long relative to the 25 ms decision interval,
/// so a group commits to a scale action for 2 s of virtual time instead
/// of chasing every queue-depth sample. This is what keeps the pinned
/// decision log phased (climb, hold, release) rather than oscillating —
/// a big batch dispatch momentarily drains any queue, and without the
/// cooldown each drained sample reads as "idle".
const COOLDOWN_NS: u64 = 2_000_000_000;

/// Shape of one study cell: a fleet size and its offered-request
/// target.
#[derive(Clone, Copy, Debug)]
pub struct CellSpec {
    /// Node groups in the fleet.
    pub groups: usize,
    /// Workers per group at the autoscaler ceiling.
    pub max_per_group: usize,
}

impl CellSpec {
    /// Worker floor per group (the autoscaler's starting count).
    #[must_use]
    pub fn min_per_group(&self) -> usize {
        (self.max_per_group / 4).max(1)
    }

    /// Fleet-wide worker ceiling — the cell's label.
    #[must_use]
    pub fn max_workers(&self) -> usize {
        self.groups * self.max_per_group
    }

    /// Tenants sharded across the fleet (8 per group on average, so a
    /// rendezvous-hash shard is essentially never empty).
    #[must_use]
    pub fn tenants(&self) -> usize {
        self.groups * 8
    }
}

/// The three fleet sizes the study sweeps: 64, 256, and 1024 max
/// workers. Offered load scales with each fleet's worker floor over the
/// shared 20 s window, so the sweep totals well past one million
/// requests (the largest cell alone offers more than a million).
#[must_use]
pub fn cells() -> Vec<CellSpec> {
    vec![
        CellSpec {
            groups: 8,
            max_per_group: 8,
        },
        CellSpec {
            groups: 16,
            max_per_group: 16,
        },
        CellSpec {
            groups: 32,
            max_per_group: 32,
        },
    ]
}

/// One finished cell of the study.
#[derive(Clone, Debug)]
pub struct FleetCell {
    /// The cell's shape.
    pub spec: CellSpec,
    /// The fleet's report.
    pub report: FleetReport,
    /// Fleet-wide invariant verdict (empty = clean).
    pub violations: Vec<String>,
}

/// Per-group serve configuration of one cell: kernel-aware batching,
/// the queue-depth/p99 autoscaler between the cell's floor and ceiling
/// (step = the floor, so three actions span the band), and
/// pressure-scaled admission pricing.
#[must_use]
pub fn serve_config(spec: &CellSpec) -> ServeConfig {
    ServeConfig {
        pool: spec.min_per_group(),
        policy: BatchPolicy::KernelAware {
            max_batch: MAX_BATCH,
        },
        autoscale: Some(AutoscalePolicy {
            step: spec.min_per_group(),
            cooldown_ns: COOLDOWN_NS,
            ..AutoscalePolicy::new(spec.min_per_group(), spec.max_per_group)
        }),
        admission: AdmissionPricing::enabled(),
        ..ServeConfig::default()
    }
}

/// The cell's workload: `tenants()` equal tenants mixing all paper
/// benchmarks, baseline rate at half the fleet's worker floor, and the
/// 8× plateau burst on every tenant across the middle of the run.
#[must_use]
pub fn workload(book: &CostBook, spec: &CellSpec) -> (WorkloadSpec, Vec<Burst>) {
    let mix: Vec<(Benchmark, f64)> = Benchmark::ALL.iter().map(|&b| (b, 1.0)).collect();
    let mean_ns: f64 = mix
        .iter()
        .map(|&(b, _)| book.est_ns(b, 1) as f64)
        .sum::<f64>()
        / mix.len() as f64;
    let floor_workers = (spec.groups * spec.min_per_group()) as f64;
    let base_rate = 0.5 * floor_workers * 1e9 / mean_ns;
    let duration_ns = DURATION_NS;

    let n = spec.tenants();
    let tenants: Vec<TenantLoad> = (0..n)
        .map(|i| {
            let mut t = TenantSpec::new(&format!("tenant-{i}"));
            t.queue_cap = 512;
            TenantLoad {
                spec: t,
                rate_rps: base_rate / n as f64,
                kernel_mix: mix.clone(),
                class_mix: [0.3, 0.5, 0.2],
                iterations: 1,
            }
        })
        .collect();
    let bursts: Vec<Burst> = (0..n)
        .map(|i| Burst {
            tenant: i,
            start_ns: (duration_ns as f64 * PLATEAU_START) as u64,
            end_ns: (duration_ns as f64 * PLATEAU_END) as u64,
            factor: PLATEAU_FACTOR,
        })
        .collect();
    (
        WorkloadSpec {
            seed: SEED,
            duration_ns,
            tenants,
        },
        bursts,
    )
}

/// Runs one cell: generates its workload, shards it through the fleet,
/// and checks every invariant per group and fleet-wide.
///
/// # Panics
///
/// Panics if the fleet rejects its own request stream — a study
/// configuration bug, not a runtime condition.
#[must_use]
pub fn run_cell(config: &HetSystemConfig, book: &CostBook, spec: CellSpec) -> FleetCell {
    let (workload, bursts) = workload(book, &spec);
    let tenants: Vec<TenantSpec> = workload.tenants.iter().map(|t| t.spec.clone()).collect();
    let requests = workload.generate_with_bursts(&bursts);
    let fleet = Fleet::new(
        config,
        tenants,
        book.clone(),
        FleetConfig {
            groups: spec.groups,
            serve: serve_config(&spec),
        },
    );
    let report = fleet.run(&requests).expect("study workload fits the fleet");
    let violations = invariants::check_fleet(&report);
    FleetCell {
        spec,
        report,
        violations,
    }
}

/// Runs all three cells (sequentially — the parallelism lives inside
/// each [`Fleet::run`]'s per-group fan-out).
///
/// # Panics
///
/// Panics if kernel measurement fails.
#[must_use]
pub fn study() -> Vec<FleetCell> {
    let config = HetSystemConfig::default();
    let book = CostBook::measure(&TargetEnv::pulp_parallel(), &config, &Benchmark::ALL)
        .expect("cost measurement");
    cells()
        .into_iter()
        .map(|spec| run_cell(&config, &book, spec))
        .collect()
}

/// Plain-text study table (the golden `fleet_table.txt` snapshot).
#[must_use]
pub fn render_table(cells: &[FleetCell]) -> String {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let r = &c.report;
            vec![
                format!("{}w", c.spec.max_workers()),
                c.spec.groups.to_string(),
                format!("{}-{}", c.spec.min_per_group(), c.spec.max_per_group),
                r.offered.to_string(),
                r.completed().to_string(),
                r.rejected().to_string(),
                r.priced_out().to_string(),
                format!("{:.1}", r.throughput_rps()),
                fmt_ms(r.latency.p99_ns),
                format!("{:.3}", r.utilization()),
                r.scale_ups().to_string(),
                r.scale_downs().to_string(),
                if c.violations.is_empty() {
                    "OK".to_owned()
                } else {
                    c.violations.len().to_string()
                },
            ]
        })
        .collect();
    let mut out = String::from("Fleet study: autoscaled node groups vs fleet size\n");
    out.push_str(&format!(
        "(seed {SEED}, max batch {MAX_BATCH}; per group: floor = ceiling/4, 8x plateau over \
         the middle 40% of the run, pressure-priced admission)\n\n"
    ));
    out.push_str(&crate::render_table(
        &[
            "cell",
            "groups",
            "workers/group",
            "offered",
            "completed",
            "rejected",
            "priced out",
            "rps",
            "p99",
            "util",
            "ups",
            "downs",
            "invariants",
        ],
        &rows,
    ));
    let offered: u64 = cells.iter().map(|c| c.report.offered).sum();
    let violations: usize = cells.iter().map(|c| c.violations.len()).sum();
    out.push_str(&format!(
        "\n{offered} requests conserved across {} fleets, {violations} invariant violations\n",
        cells.len(),
    ));
    out
}

/// The smallest cell's autoscaler decision log (the golden
/// `fleet_autoscale.txt` snapshot) — small enough to pin, and every
/// scaling mechanism appears in it.
#[must_use]
pub fn render_decision_log(cells: &[FleetCell]) -> String {
    let c = &cells[0];
    let mut out = format!(
        "autoscaler decisions, {}-worker cell (seed {SEED}, {} groups, {}-{} workers/group)\n",
        c.spec.max_workers(),
        c.spec.groups,
        c.spec.min_per_group(),
        c.spec.max_per_group
    );
    out.push_str(&render_scale_log(&c.report.scale_events));
    out
}

/// Renders the committed `BENCH_fleet.json`: per-cell conservation,
/// service, and autoscaler numbers. Deliberately excludes the `--jobs`
/// setting and every other machine fact — the file is a claim about the
/// *model*, and must be byte-identical however it was produced.
#[must_use]
pub fn render_json(cells: &[FleetCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"het-accel-fleet-v1\",\n");
    out.push_str("  \"time_basis\": \"virtual nanoseconds (seeded, machine-independent)\",\n");
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"max_batch\": {MAX_BATCH},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.report;
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"cell\": \"{}w\",\n      \"groups\": {},\n      \
             \"workers_per_group\": {{\"min\": {}, \"max\": {}}},\n",
            c.spec.max_workers(),
            c.spec.groups,
            c.spec.min_per_group(),
            c.spec.max_per_group
        ));
        out.push_str(&format!(
            "      \"conservation\": {{\"offered\": {}, \"admitted\": {}, \"completed\": {}, \
             \"rejected\": {}, \"priced_out\": {}, \"failed_over\": {}, \"failed\": {}, \
             \"stranded\": {}}},\n",
            r.offered,
            r.admitted(),
            r.completed(),
            r.rejected(),
            r.priced_out(),
            r.failed_over(),
            r.failed(),
            r.stranded()
        ));
        out.push_str(&format!(
            "      \"service\": {{\"throughput_rps\": {:.3}, \"p50_ms\": \"{}\", \
             \"p99_ms\": \"{}\", \"utilization\": {:.3}, \"deadline_misses\": {}, \
             \"makespan_ns\": {}}},\n",
            r.throughput_rps(),
            fmt_ms(r.latency.p50_ns),
            fmt_ms(r.latency.p99_ns),
            r.utilization(),
            r.deadline_misses(),
            r.makespan_ns
        ));
        out.push_str(&format!(
            "      \"autoscaler\": {{\"scale_ups\": {}, \"scale_downs\": {}, \
             \"events\": {}}},\n",
            r.scale_ups(),
            r.scale_downs(),
            r.scale_events.len()
        ));
        out.push_str(&format!(
            "      \"invariant_violations\": {}\n",
            c.violations.len()
        ));
        out.push_str(if i + 1 == cells.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    let offered: u64 = cells.iter().map(|c| c.report.offered).sum();
    out.push_str(&format!("  \"total_offered\": {offered}\n"));
    out.push_str("}\n");
    out
}

/// Runs the full study and returns the table (the `fleet` binary's
/// stdout).
#[must_use]
pub fn run() -> String {
    render_table(&study())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_specs_cover_the_mandated_sweep() {
        let cs = cells();
        assert_eq!(
            cs.iter().map(CellSpec::max_workers).collect::<Vec<_>>(),
            vec![64, 256, 1024]
        );
        for c in &cs {
            assert!(c.min_per_group() * 4 == c.max_per_group);
            assert!(c.tenants() >= 8 * c.groups);
        }
    }

    #[test]
    fn workload_shape_scales_with_the_cell() {
        let config = HetSystemConfig::default();
        let book = CostBook::measure(
            &TargetEnv::pulp_parallel(),
            &config,
            &[Benchmark::MatMul, Benchmark::Cnn],
        )
        .expect("cost measurement");
        let spec = cells()[0];
        let (w, bursts) = workload(&book, &spec);
        assert_eq!(w.tenants.len(), spec.tenants());
        assert_eq!(bursts.len(), spec.tenants());
        for b in &bursts {
            assert!(b.start_ns < b.end_ns && b.end_ns <= w.duration_ns);
            assert!((b.factor - PLATEAU_FACTOR).abs() < f64::EPSILON);
        }
        let cfg = serve_config(&spec);
        assert_eq!(cfg.pool, spec.min_per_group());
        let policy = cfg.autoscale.expect("study cells autoscale");
        assert_eq!(policy.max_workers, spec.max_per_group);
        assert!(cfg.admission.enabled);
    }
}
