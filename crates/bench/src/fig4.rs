//! Fig. 4: architectural speedup (left) and parallel speedup (right).

use crate::measure::{measure_all, Measurement};
use crate::render_table;

/// Renders both panels of Fig. 4.
#[must_use]
pub fn render(measurements: &[Measurement]) -> String {
    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.benchmark.name().to_owned(),
                if m.benchmark.is_fixed_point() {
                    "fixed"
                } else {
                    "int/other"
                }
                .to_owned(),
                format!("{:.2}", m.arch_speedup_m3()),
                format!("{:.2}", m.arch_speedup_m4()),
                format!("{:.2}", m.parallel_speedup()),
                format!("{:.0}%", m.parallel_speedup() / 4.0 * 100.0),
            ]
        })
        .collect();
    let mean_par: f64 = measurements
        .iter()
        .map(Measurement::parallel_speedup)
        .sum::<f64>()
        / measurements.len() as f64;
    let mut out = String::from(
        "Fig. 4 — architectural speedup (1×OR10N vs Cortex-M, cycles) and\n\
         parallel speedup (4 cores vs 1, ideal 4×)\n\n",
    );
    out.push_str(&render_table(
        &[
            "benchmark",
            "group",
            "arch ×M3",
            "arch ×M4",
            "parallel ×",
            "par. eff.",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "\nmean parallel speedup: {mean_par:.2}× (ideal 4×, gap = Amdahl + OpenMP runtime; \
         paper reports ≈6% average runtime overhead)\n"
    ));
    out
}

/// Measures and renders Fig. 4.
#[must_use]
pub fn run() -> String {
    render(&measure_all())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measure;
    use ulp_kernels::Benchmark;

    #[test]
    fn shape_integer_above_fixed_above_hog() {
        // The defining shape of Fig. 4 left.
        let mm = measure(Benchmark::MatMul);
        let sv = measure(Benchmark::SvmLinear);
        let hog = measure(Benchmark::Hog);
        assert!(
            mm.arch_speedup_m4() > sv.arch_speedup_m4(),
            "integer ({:.2}) must beat fixed-point ({:.2})",
            mm.arch_speedup_m4(),
            sv.arch_speedup_m4()
        );
        assert!(
            sv.arch_speedup_m4() > hog.arch_speedup_m4(),
            "fixed-point ({:.2}) must beat hog ({:.2})",
            sv.arch_speedup_m4(),
            hog.arch_speedup_m4()
        );
        assert!(
            hog.arch_speedup_m4() < 1.0,
            "hog shows an architectural slowdown"
        );
    }

    #[test]
    fn render_mentions_overhead() {
        let ms = vec![measure(Benchmark::MatMulFixed)];
        let s = render(&ms);
        assert!(s.contains("parallel"));
        assert!(s.contains("matmul (fixed)"));
    }
}
