//! Fig. 3: energy efficiency on `matmul` — PULP operating points vs
//! commercial MCUs.

use ulp_kernels::Benchmark;
use ulp_mcu::{datasheet, HostCoreKind};
use ulp_power::PulpPowerModel;

use crate::measure::{measure, Measurement};
use crate::render_table;

/// One point of the efficiency/power plane.
#[derive(Clone, Debug)]
pub struct Fig3Point {
    /// Device / operating-point label.
    pub label: String,
    /// Throughput in millions of RISC operations per second.
    pub mops: f64,
    /// Power in milliwatts.
    pub power_mw: f64,
    /// Energy efficiency in GOPS/W.
    pub gops_per_watt: f64,
}

/// The complete Fig. 3 dataset.
#[derive(Clone, Debug)]
pub struct Fig3 {
    /// Commercial MCU operating points.
    pub mcus: Vec<Fig3Point>,
    /// PULP operating points (0.5–1.0 V sweep at fmax).
    pub pulp: Vec<Fig3Point>,
}

impl Fig3 {
    /// Peak PULP efficiency point.
    #[must_use]
    pub fn pulp_peak(&self) -> &Fig3Point {
        self.pulp
            .iter()
            .max_by(|a, b| a.gops_per_watt.total_cmp(&b.gops_per_watt))
            .expect("sweep is non-empty")
    }

    /// Best commercial MCU efficiency.
    #[must_use]
    pub fn best_mcu(&self) -> &Fig3Point {
        self.mcus
            .iter()
            .max_by(|a, b| a.gops_per_watt.total_cmp(&b.gops_per_watt))
            .expect("device list is non-empty")
    }
}

/// Computes the Fig. 3 dataset from a matmul measurement.
#[must_use]
pub fn compute(m: &Measurement) -> Fig3 {
    let ops = m.risc_ops as f64;

    let mut mcus = Vec::new();
    for dev in datasheet::all() {
        let base_cycles = match dev.core {
            HostCoreKind::CortexM4 => m.cycles_m4,
            HostCoreKind::CortexM3 | HostCoreKind::Msp430 => m.cycles_m3,
        };
        let cycles = dev.effective_cycles(base_cycles) as f64;
        for &f in dev.sweep_hz {
            let seconds = cycles / f;
            let power = dev.run_power_w(f);
            mcus.push(Fig3Point {
                label: format!("{} @{:.0}MHz", dev.name, f / 1e6),
                mops: ops / seconds / 1.0e6,
                power_mw: power * 1e3,
                gops_per_watt: ops / seconds / 1.0e9 / power,
            });
        }
    }

    let model = PulpPowerModel::pulp3();
    let mut pulp = Vec::new();
    let mut vdd = 0.5f64;
    while vdd <= 1.0 + 1e-9 {
        let v = vdd.min(1.0);
        let f = model.fmax_hz(v);
        let seconds = m.cycles_quad as f64 / f;
        let power = model.total_power_w(f, v, &m.activity_quad);
        pulp.push(Fig3Point {
            label: format!("PULP @{v:.2}V/{:.0}MHz", f / 1e6),
            mops: ops / seconds / 1.0e6,
            power_mw: power * 1e3,
            gops_per_watt: ops / seconds / 1.0e9 / power,
        });
        vdd += 0.05;
    }

    Fig3 { mcus, pulp }
}

/// Renders the Fig. 3 table.
#[must_use]
pub fn render(fig: &Fig3) -> String {
    let row = |p: &Fig3Point| {
        vec![
            p.label.clone(),
            format!("{:.1}", p.mops),
            format!("{:.3}", p.power_mw),
            format!("{:.1}", p.gops_per_watt),
        ]
    };
    let mut rows: Vec<Vec<String>> = fig.mcus.iter().map(row).collect();
    rows.extend(fig.pulp.iter().map(row));
    let mut out = String::from("Fig. 3 — energy efficiency on matmul (GOPS = 1e9 RISC ops/s)\n\n");
    out.push_str(&render_table(
        &["operating point", "MOPS", "mW", "GOPS/W"],
        &rows,
    ));
    let peak = fig.pulp_peak();
    let best = fig.best_mcu();
    out.push_str(&format!(
        "\nPULP peak: {:.0} GOPS/W at {:.2} mW ({}) — paper anchor: 304 GOPS/W at 1.48 mW\n\
         best MCU:  {:.1} GOPS/W ({}) — paper: <5 GOPS/W, Apollo ≈10 GOPS/W at 24 MOPS\n\
         efficiency gap: {:.0}×\n",
        peak.gops_per_watt,
        peak.power_mw,
        peak.label,
        best.gops_per_watt,
        best.label,
        peak.gops_per_watt / best.gops_per_watt,
    ));
    out
}

/// Measures matmul and renders Fig. 3.
#[must_use]
pub fn run() -> String {
    render(&compute(&measure(Benchmark::MatMul)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig3 {
        compute(&measure(Benchmark::MatMul))
    }

    #[test]
    fn pulp_peak_shape() {
        // The peak sits at the lowest operating point, at ≈1.5 mW. Our
        // absolute GOPS/W runs ≈3× above the paper's 304 because the
        // featureless baseline retires ≈3× more instructions per unit of
        // work than the paper's compiled baseline appears to (see
        // EXPERIMENTS.md); the *relative* picture is asserted in
        // `efficiency_gap_around_1_5_orders_of_magnitude`.
        let f = fig();
        let peak = f.pulp_peak();
        assert!(
            (400.0..1500.0).contains(&peak.gops_per_watt),
            "peak {:.0} GOPS/W outside the calibrated band",
            peak.gops_per_watt
        );
        assert!(
            (0.9..2.2).contains(&peak.power_mw),
            "peak power {:.2} mW outside the 1.48 mW anchor band",
            peak.power_mw
        );
        assert!(
            peak.label.contains("0.50V"),
            "peak must sit at the lowest VDD"
        );
    }

    #[test]
    fn apollo_best_mcu_and_all_far_below_pulp() {
        // Paper: every MCU below 5 GOPS/W except the Apollo at ≈10 (same
        // ≈3× scale factor as the PULP numbers; ratios preserved).
        let f = fig();
        for p in &f.mcus {
            assert!(
                p.gops_per_watt < 25.0,
                "{}: {:.1} GOPS/W",
                p.label,
                p.gops_per_watt
            );
            if !p.label.contains("Apollo") {
                assert!(
                    p.gops_per_watt < 13.0,
                    "{}: {:.1} GOPS/W",
                    p.label,
                    p.gops_per_watt
                );
            }
        }
        let best = f.best_mcu();
        assert!(best.label.contains("Apollo"));
        // The Apollo leads the commercial pack by a clear margin…
        let second = f
            .mcus
            .iter()
            .filter(|p| !p.label.contains("Apollo"))
            .map(|p| p.gops_per_watt)
            .fold(0.0, f64::max);
        assert!(best.gops_per_watt > 1.8 * second);
        // …and still loses to every PULP operating point.
        for p in &f.pulp {
            assert!(p.gops_per_watt > best.gops_per_watt, "{}", p.label);
        }
    }

    #[test]
    fn efficiency_gap_around_1_5_orders_of_magnitude() {
        // "a gain of 1.5 orders of magnitude in energy efficiency between
        // PULP and the MCUs".
        let f = fig();
        let gap = f.pulp_peak().gops_per_watt / f.best_mcu().gops_per_watt;
        assert!(
            (15.0..80.0).contains(&gap),
            "gap {gap:.0}× outside the band"
        );
    }

    #[test]
    fn pulp_efficiency_peaks_at_low_voltage() {
        let f = fig();
        let first = &f.pulp[0]; // 0.50 V
        let last = f.pulp.last().unwrap(); // 1.00 V
        assert!(
            first.gops_per_watt > last.gops_per_watt,
            "efficiency must fall with VDD"
        );
        assert!(last.mops > first.mops, "throughput must rise with VDD");
    }
}
