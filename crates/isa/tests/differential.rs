//! Differential testing of instruction semantics: every ALU operation is
//! executed on the interpreter with random operands and compared against
//! an independently written Rust evaluation of the architected semantics.

// Gated off by default: needs the external `proptest` crate (no registry
// access in CI). See the `proptest` feature note in Cargo.toml.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use ulp_isa::prelude::*;

/// Independently evaluates the architected result of a 3-register ALU
/// instruction (a *second implementation* of the semantics, deliberately
/// written differently from the interpreter).
fn eval(insn: &Insn, a: u32, b: u32, d: u32) -> u32 {
    let (ai, bi) = (a as i32, b as i32);
    match insn {
        Insn::Add(..) => a.wrapping_add(b),
        Insn::Sub(..) => a.wrapping_sub(b),
        Insn::And(..) => a & b,
        Insn::Or(..) => a | b,
        Insn::Xor(..) => a ^ b,
        Insn::Sll(..) => a.wrapping_shl(b & 31),
        Insn::Srl(..) => a.wrapping_shr(b & 31),
        Insn::Sra(..) => ai.wrapping_shr(b & 31) as u32,
        Insn::Slt(..) => u32::from(ai < bi),
        Insn::Sltu(..) => u32::from(a < b),
        Insn::Min(..) => ai.min(bi) as u32,
        Insn::Max(..) => ai.max(bi) as u32,
        Insn::Mul(..) => a.wrapping_mul(b),
        Insn::Mac(..) => d.wrapping_add(a.wrapping_mul(b)),
        Insn::SdotV4(..) => {
            let mut acc = d as i32;
            for lane in 0..4 {
                let x = (a >> (8 * lane)) as i8 as i32;
                let y = (b >> (8 * lane)) as i8 as i32;
                acc = acc.wrapping_add(x.wrapping_mul(y));
            }
            acc as u32
        }
        Insn::SdotV2(..) => {
            let mut acc = d as i32;
            for lane in 0..2 {
                let x = (a >> (16 * lane)) as i16 as i32;
                let y = (b >> (16 * lane)) as i16 as i32;
                acc = acc.wrapping_add(x.wrapping_mul(y));
            }
            acc as u32
        }
        Insn::AddV4(..) => {
            let mut out = 0u32;
            for lane in 0..4 {
                let x = (a >> (8 * lane)) as u8;
                let y = (b >> (8 * lane)) as u8;
                out |= u32::from(x.wrapping_add(y)) << (8 * lane);
            }
            out
        }
        Insn::SubV4(..) => {
            let mut out = 0u32;
            for lane in 0..4 {
                let x = (a >> (8 * lane)) as u8;
                let y = (b >> (8 * lane)) as u8;
                out |= u32::from(x.wrapping_sub(y)) << (8 * lane);
            }
            out
        }
        Insn::AddV2(..) => {
            let mut out = 0u32;
            for lane in 0..2 {
                let x = (a >> (16 * lane)) as u16;
                let y = (b >> (16 * lane)) as u16;
                out |= u32::from(x.wrapping_add(y)) << (16 * lane);
            }
            out
        }
        Insn::SubV2(..) => {
            let mut out = 0u32;
            for lane in 0..2 {
                let x = (a >> (16 * lane)) as u16;
                let y = (b >> (16 * lane)) as u16;
                out |= u32::from(x.wrapping_sub(y)) << (16 * lane);
            }
            out
        }
        Insn::Div(..) => {
            if bi == 0 {
                u32::MAX
            } else {
                ai.wrapping_div(bi) as u32
            }
        }
        Insn::Divu(..) => a.checked_div(b).unwrap_or(u32::MAX),
        other => panic!("not a covered ALU instruction: {other}"),
    }
}

fn run_one(insn: Insn, a: u32, b: u32, d: u32) -> u32 {
    let mut asm = Asm::new();
    asm.insn(insn);
    asm.halt();
    let prog = asm.finish().unwrap();
    let mut mem = FlatMemory::new(0, 256);
    mem.load_program(&prog, 0).unwrap();
    // Cortex-M4 has div+mac; use it for everything except the SIMD ops.
    let model = if matches!(
        insn,
        Insn::SdotV4(..)
        | Insn::SdotV2(..)
        | Insn::AddV4(..)
        | Insn::AddV2(..)
        | Insn::SubV4(..)
        | Insn::SubV2(..)
    ) {
        CoreModel::or10n()
    } else {
        CoreModel::cortex_m4()
    };
    let mut core = Core::new(0, model);
    core.reset(0);
    core.set_reg(R2, a);
    core.set_reg(R3, b);
    core.set_reg(R1, d);
    core.run(&mut mem, 1000).unwrap();
    core.reg(R1)
}

macro_rules! alu_case {
    ($name:ident, $variant:ident) => {
        proptest! {
            #[test]
            fn $name(a in any::<u32>(), b in any::<u32>(), d in any::<u32>()) {
                let insn = Insn::$variant(R1, R2, R3);
                prop_assert_eq!(run_one(insn, a, b, d), eval(&insn, a, b, d));
            }
        }
    };
}

alu_case!(diff_add, Add);
alu_case!(diff_sub, Sub);
alu_case!(diff_and, And);
alu_case!(diff_or, Or);
alu_case!(diff_xor, Xor);
alu_case!(diff_sll, Sll);
alu_case!(diff_srl, Srl);
alu_case!(diff_sra, Sra);
alu_case!(diff_slt, Slt);
alu_case!(diff_sltu, Sltu);
alu_case!(diff_min, Min);
alu_case!(diff_max, Max);
alu_case!(diff_mul, Mul);
alu_case!(diff_mac, Mac);
alu_case!(diff_sdotv4, SdotV4);
alu_case!(diff_sdotv2, SdotV2);
alu_case!(diff_addv4, AddV4);
alu_case!(diff_addv2, AddV2);
alu_case!(diff_subv4, SubV4);
alu_case!(diff_subv2, SubV2);
alu_case!(diff_div, Div);
alu_case!(diff_divu, Divu);

proptest! {
    /// 64-bit multiply-accumulate against native i64/u64 arithmetic.
    #[test]
    fn diff_mlal(a in any::<u32>(), b in any::<u32>(), hi in any::<u32>(), lo in any::<u32>(),
                 signed in any::<bool>()) {
        let insn = Insn::Mlal { rd_hi: R4, rd_lo: R5, ra: R2, rb: R3, signed };
        let mut asm = Asm::new();
        asm.insn(insn);
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = FlatMemory::new(0, 256);
        mem.load_program(&prog, 0).unwrap();
        let mut core = Core::new(0, CoreModel::cortex_m4());
        core.reset(0);
        core.set_reg(R2, a);
        core.set_reg(R3, b);
        core.set_reg(R4, hi);
        core.set_reg(R5, lo);
        core.run(&mut mem, 100).unwrap();
        let got = (u64::from(core.reg(R4)) << 32) | u64::from(core.reg(R5));
        let acc = (u64::from(hi) << 32) | u64::from(lo);
        let prod = if signed {
            (i64::from(a as i32).wrapping_mul(i64::from(b as i32))) as u64
        } else {
            u64::from(a).wrapping_mul(u64::from(b))
        };
        prop_assert_eq!(got, acc.wrapping_add(prod));
    }

    /// Branch predicates agree with the architected comparison semantics:
    /// a taken branch skips the `r6 = 1` marker instruction.
    #[test]
    fn diff_branches(a in any::<u32>(), b in any::<u32>(), kind in 0usize..6) {
        let taken_expected = match kind {
            0 => a == b,
            1 => a != b,
            2 => (a as i32) < (b as i32),
            3 => (a as i32) >= (b as i32),
            4 => a < b,
            _ => a >= b,
        };
        let mut asm = Asm::new();
        let target = asm.new_label();
        match kind {
            0 => asm.beq(R2, R3, target),
            1 => asm.bne(R2, R3, target),
            2 => asm.blt(R2, R3, target),
            3 => asm.bge(R2, R3, target),
            4 => asm.bltu(R2, R3, target),
            _ => asm.bgeu(R2, R3, target),
        };
        asm.li(R6, 1);
        asm.bind(target);
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = FlatMemory::new(0, 128);
        mem.load_program(&prog, 0).unwrap();
        let mut core = Core::new(0, CoreModel::risc_baseline());
        core.reset(0);
        core.set_reg(R2, a);
        core.set_reg(R3, b);
        core.run(&mut mem, 100).unwrap();
        prop_assert_eq!(core.reg(R6) == 0, taken_expected);
    }

    /// Immediate forms agree with their register forms.
    #[test]
    fn diff_addi_vs_add(a in any::<u32>(), imm in -8192i16..8192) {
        let via_imm = {
            let mut asm = Asm::new();
            asm.addi(R1, R2, imm);
            asm.halt();
            let prog = asm.finish().unwrap();
            let mut mem = FlatMemory::new(0, 128);
            mem.load_program(&prog, 0).unwrap();
            let mut core = Core::new(0, CoreModel::risc_baseline());
            core.reset(0);
            core.set_reg(R2, a);
            core.run(&mut mem, 100).unwrap();
            core.reg(R1)
        };
        prop_assert_eq!(via_imm, a.wrapping_add(imm as i32 as u32));
    }
}
