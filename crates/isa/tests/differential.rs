//! Differential testing of instruction semantics: every ALU operation is
//! executed on the interpreter with random operands and compared against
//! an independently written Rust evaluation of the architected semantics.
//!
//! The seeded battery below runs in the default `cargo test` with no
//! external dependencies: 10 000 corner-biased operand triples per opcode
//! from the in-tree `ulp-rng` stream, reproducible from the fixed seed.
//! The proptest variant (shrinking, adaptive case generation) remains in
//! the feature-gated `deep` module at the bottom.

use ulp_isa::prelude::*;
use ulp_rng::gen::operand32;
use ulp_rng::XorShiftRng;

/// Independently evaluates the architected result of a 3-register ALU
/// instruction (a *second implementation* of the semantics, deliberately
/// written differently from the interpreter).
fn eval(insn: &Insn, a: u32, b: u32, d: u32) -> u32 {
    let (ai, bi) = (a as i32, b as i32);
    match insn {
        Insn::Add(..) => a.wrapping_add(b),
        Insn::Sub(..) => a.wrapping_sub(b),
        Insn::And(..) => a & b,
        Insn::Or(..) => a | b,
        Insn::Xor(..) => a ^ b,
        Insn::Sll(..) => a.wrapping_shl(b & 31),
        Insn::Srl(..) => a.wrapping_shr(b & 31),
        Insn::Sra(..) => ai.wrapping_shr(b & 31) as u32,
        Insn::Slt(..) => u32::from(ai < bi),
        Insn::Sltu(..) => u32::from(a < b),
        Insn::Min(..) => ai.min(bi) as u32,
        Insn::Max(..) => ai.max(bi) as u32,
        Insn::Mul(..) => a.wrapping_mul(b),
        Insn::Mac(..) => d.wrapping_add(a.wrapping_mul(b)),
        Insn::SdotV4(..) => {
            let mut acc = d as i32;
            for lane in 0..4 {
                let x = (a >> (8 * lane)) as i8 as i32;
                let y = (b >> (8 * lane)) as i8 as i32;
                acc = acc.wrapping_add(x.wrapping_mul(y));
            }
            acc as u32
        }
        Insn::SdotV2(..) => {
            let mut acc = d as i32;
            for lane in 0..2 {
                let x = (a >> (16 * lane)) as i16 as i32;
                let y = (b >> (16 * lane)) as i16 as i32;
                acc = acc.wrapping_add(x.wrapping_mul(y));
            }
            acc as u32
        }
        Insn::AddV4(..) => {
            let mut out = 0u32;
            for lane in 0..4 {
                let x = (a >> (8 * lane)) as u8;
                let y = (b >> (8 * lane)) as u8;
                out |= u32::from(x.wrapping_add(y)) << (8 * lane);
            }
            out
        }
        Insn::SubV4(..) => {
            let mut out = 0u32;
            for lane in 0..4 {
                let x = (a >> (8 * lane)) as u8;
                let y = (b >> (8 * lane)) as u8;
                out |= u32::from(x.wrapping_sub(y)) << (8 * lane);
            }
            out
        }
        Insn::AddV2(..) => {
            let mut out = 0u32;
            for lane in 0..2 {
                let x = (a >> (16 * lane)) as u16;
                let y = (b >> (16 * lane)) as u16;
                out |= u32::from(x.wrapping_add(y)) << (16 * lane);
            }
            out
        }
        Insn::SubV2(..) => {
            let mut out = 0u32;
            for lane in 0..2 {
                let x = (a >> (16 * lane)) as u16;
                let y = (b >> (16 * lane)) as u16;
                out |= u32::from(x.wrapping_sub(y)) << (16 * lane);
            }
            out
        }
        Insn::Div(..) => {
            if bi == 0 {
                u32::MAX
            } else {
                ai.wrapping_div(bi) as u32
            }
        }
        Insn::Divu(..) => a.checked_div(b).unwrap_or(u32::MAX),
        other => panic!("not a covered ALU instruction: {other}"),
    }
}

fn run_one(insn: Insn, a: u32, b: u32, d: u32) -> u32 {
    let mut asm = Asm::new();
    asm.insn(insn);
    asm.halt();
    let prog = asm.finish().unwrap();
    let mut mem = FlatMemory::new(0, 256);
    mem.load_program(&prog, 0).unwrap();
    // Cortex-M4 has div+mac; use it for everything except the SIMD ops.
    let model = if matches!(
        insn,
        Insn::SdotV4(..)
            | Insn::SdotV2(..)
            | Insn::AddV4(..)
            | Insn::AddV2(..)
            | Insn::SubV4(..)
            | Insn::SubV2(..)
    ) {
        CoreModel::or10n()
    } else {
        CoreModel::cortex_m4()
    };
    let mut core = Core::new(0, model);
    core.reset(0);
    core.set_reg(R2, a);
    core.set_reg(R3, b);
    core.set_reg(R1, d);
    core.run(&mut mem, 1000).unwrap();
    core.reg(R1)
}

/// Operand triples per opcode in the always-on battery, multiplied by
/// `ULP_BATTERY_SCALE` (default 1; the nightly CI job raises it).
const TRIPLES: usize = 10_000;

/// Triples to run right now, honouring the scale knob.
fn scaled_triples() -> usize {
    TRIPLES * ulp_par::battery_scale()
}

macro_rules! alu_case {
    ($name:ident, $variant:ident, $seed:expr) => {
        #[test]
        fn $name() {
            let scale = ulp_par::battery_scale();
            let mut rng = XorShiftRng::seed_from_u64($seed);
            let insn = Insn::$variant(R1, R2, R3);
            for i in 0..scaled_triples() {
                let (a, b, d) = (
                    operand32(&mut rng),
                    operand32(&mut rng),
                    operand32(&mut rng),
                );
                // A failing triple appends its reproduction line to
                // target/battery-failures/ before panicking, so the
                // nightly job can upload it as an artifact.
                let repro = format!(
                    "{}: seed={:#x} triple={} ULP_BATTERY_SCALE={}",
                    stringify!($name),
                    $seed,
                    i,
                    scale
                );
                ulp_par::battery_case("isa_differential", &repro, || {
                    let got = run_one(insn, a, b, d);
                    let want = eval(&insn, a, b, d);
                    assert_eq!(
                        got, want,
                        "{insn} diverged on triple #{i}: a={a:#010x} b={b:#010x} d={d:#010x} \
                         (got {got:#010x}, want {want:#010x})"
                    );
                });
            }
        }
    };
}

alu_case!(diff_add, Add, 0x0A01);
alu_case!(diff_sub, Sub, 0x0A02);
alu_case!(diff_and, And, 0x0A03);
alu_case!(diff_or, Or, 0x0A04);
alu_case!(diff_xor, Xor, 0x0A05);
alu_case!(diff_sll, Sll, 0x0A06);
alu_case!(diff_srl, Srl, 0x0A07);
alu_case!(diff_sra, Sra, 0x0A08);
alu_case!(diff_slt, Slt, 0x0A09);
alu_case!(diff_sltu, Sltu, 0x0A0A);
alu_case!(diff_min, Min, 0x0A0B);
alu_case!(diff_max, Max, 0x0A0C);
alu_case!(diff_mul, Mul, 0x0A0D);
alu_case!(diff_mac, Mac, 0x0A0E);
alu_case!(diff_sdotv4, SdotV4, 0x0A0F);
alu_case!(diff_sdotv2, SdotV2, 0x0A10);
alu_case!(diff_addv4, AddV4, 0x0A11);
alu_case!(diff_addv2, AddV2, 0x0A12);
alu_case!(diff_subv4, SubV4, 0x0A13);
alu_case!(diff_subv2, SubV2, 0x0A14);
alu_case!(diff_div, Div, 0x0A15);
alu_case!(diff_divu, Divu, 0x0A16);

/// 64-bit multiply-accumulate against native i64/u64 arithmetic.
#[test]
fn diff_mlal() {
    let mut rng = XorShiftRng::seed_from_u64(0x0B01);
    for _ in 0..scaled_triples() {
        let (a, b) = (operand32(&mut rng), operand32(&mut rng));
        let (hi, lo) = (operand32(&mut rng), operand32(&mut rng));
        let signed: bool = rng.gen();
        let insn = Insn::Mlal {
            rd_hi: R4,
            rd_lo: R5,
            ra: R2,
            rb: R3,
            signed,
        };
        let mut asm = Asm::new();
        asm.insn(insn);
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = FlatMemory::new(0, 256);
        mem.load_program(&prog, 0).unwrap();
        let mut core = Core::new(0, CoreModel::cortex_m4());
        core.reset(0);
        core.set_reg(R2, a);
        core.set_reg(R3, b);
        core.set_reg(R4, hi);
        core.set_reg(R5, lo);
        core.run(&mut mem, 100).unwrap();
        let got = (u64::from(core.reg(R4)) << 32) | u64::from(core.reg(R5));
        let acc = (u64::from(hi) << 32) | u64::from(lo);
        let prod = if signed {
            (i64::from(a as i32).wrapping_mul(i64::from(b as i32))) as u64
        } else {
            u64::from(a).wrapping_mul(u64::from(b))
        };
        assert_eq!(
            got,
            acc.wrapping_add(prod),
            "mlal signed={signed} a={a:#x} b={b:#x}"
        );
    }
}

/// Branch predicates agree with the architected comparison semantics:
/// a taken branch skips the `r6 = 1` marker instruction.
#[test]
fn diff_branches() {
    let mut rng = XorShiftRng::seed_from_u64(0x0B02);
    for _ in 0..scaled_triples() {
        let (a, b) = (operand32(&mut rng), operand32(&mut rng));
        let kind = rng.gen_range(0usize..6);
        let taken_expected = match kind {
            0 => a == b,
            1 => a != b,
            2 => (a as i32) < (b as i32),
            3 => (a as i32) >= (b as i32),
            4 => a < b,
            _ => a >= b,
        };
        let mut asm = Asm::new();
        let target = asm.new_label();
        match kind {
            0 => asm.beq(R2, R3, target),
            1 => asm.bne(R2, R3, target),
            2 => asm.blt(R2, R3, target),
            3 => asm.bge(R2, R3, target),
            4 => asm.bltu(R2, R3, target),
            _ => asm.bgeu(R2, R3, target),
        };
        asm.li(R6, 1);
        asm.bind(target);
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = FlatMemory::new(0, 128);
        mem.load_program(&prog, 0).unwrap();
        let mut core = Core::new(0, CoreModel::risc_baseline());
        core.reset(0);
        core.set_reg(R2, a);
        core.set_reg(R3, b);
        core.run(&mut mem, 100).unwrap();
        assert_eq!(
            core.reg(R6) == 0,
            taken_expected,
            "branch kind {kind} a={a:#x} b={b:#x}"
        );
    }
}

/// Immediate forms agree with their register forms.
#[test]
fn diff_addi_vs_add() {
    let mut rng = XorShiftRng::seed_from_u64(0x0B03);
    for _ in 0..scaled_triples() {
        let a = operand32(&mut rng);
        let imm: i16 = rng.gen_range(-8192i16..8192);
        let mut asm = Asm::new();
        asm.addi(R1, R2, imm);
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = FlatMemory::new(0, 128);
        mem.load_program(&prog, 0).unwrap();
        let mut core = Core::new(0, CoreModel::risc_baseline());
        core.reset(0);
        core.set_reg(R2, a);
        core.run(&mut mem, 100).unwrap();
        assert_eq!(
            core.reg(R1),
            a.wrapping_add(imm as i32 as u32),
            "addi a={a:#x} imm={imm}"
        );
    }
}

/// The deep variant: proptest-driven case generation with shrinking.
/// Needs the external `proptest` crate — add `proptest = "1"` under
/// `[dev-dependencies]` (registry access required) and pass
/// `--features proptest`.
#[cfg(feature = "proptest")]
mod deep {
    use super::{eval, run_one};
    use proptest::prelude::*;
    use ulp_isa::prelude::*;

    macro_rules! alu_case_deep {
        ($name:ident, $variant:ident) => {
            proptest! {
                #[test]
                fn $name(a in any::<u32>(), b in any::<u32>(), d in any::<u32>()) {
                    let insn = Insn::$variant(R1, R2, R3);
                    prop_assert_eq!(run_one(insn, a, b, d), eval(&insn, a, b, d));
                }
            }
        };
    }

    alu_case_deep!(deep_add, Add);
    alu_case_deep!(deep_sub, Sub);
    alu_case_deep!(deep_and, And);
    alu_case_deep!(deep_or, Or);
    alu_case_deep!(deep_xor, Xor);
    alu_case_deep!(deep_sll, Sll);
    alu_case_deep!(deep_srl, Srl);
    alu_case_deep!(deep_sra, Sra);
    alu_case_deep!(deep_slt, Slt);
    alu_case_deep!(deep_sltu, Sltu);
    alu_case_deep!(deep_min, Min);
    alu_case_deep!(deep_max, Max);
    alu_case_deep!(deep_mul, Mul);
    alu_case_deep!(deep_mac, Mac);
    alu_case_deep!(deep_sdotv4, SdotV4);
    alu_case_deep!(deep_sdotv2, SdotV2);
    alu_case_deep!(deep_addv4, AddV4);
    alu_case_deep!(deep_addv2, AddV2);
    alu_case_deep!(deep_subv4, SubV4);
    alu_case_deep!(deep_subv2, SubV2);
    alu_case_deep!(deep_div, Div);
    alu_case_deep!(deep_divu, Divu);
}
