//! Property-based tests for the UIR encoding layer and interpreter.

// Gated off by default: needs the external `proptest` crate (no registry
// access in CI). See the `proptest` feature note in Cargo.toml.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use ulp_isa::prelude::*;
use ulp_isa::{decode, encode};

fn any_reg() -> impl Strategy<Value = Reg> + Clone {
    (0u8..32).prop_map(Reg::new as fn(u8) -> Reg)
}

fn any_mem_size() -> impl Strategy<Value = MemSize> {
    prop_oneof![
        Just(MemSize::Byte),
        Just(MemSize::Half),
        Just(MemSize::Word)
    ]
}

/// Branch-style byte offsets representable in a 14-bit word-offset field.
fn any_off14() -> impl Strategy<Value = i32> {
    (-8192i32..8192).prop_map(|w| w * 4)
}

fn imm14_s() -> impl Strategy<Value = i16> {
    -8192i16..8192
}

fn imm14_u() -> impl Strategy<Value = u16> {
    0u16..16384
}

fn any_insn() -> impl Strategy<Value = Insn> {
    let rrr = (any_reg(), any_reg(), any_reg());
    prop_oneof![
        rrr.clone().prop_map(|(d, a, b)| Insn::Add(d, a, b)),
        rrr.clone().prop_map(|(d, a, b)| Insn::Sub(d, a, b)),
        rrr.clone().prop_map(|(d, a, b)| Insn::Xor(d, a, b)),
        rrr.clone().prop_map(|(d, a, b)| Insn::Mul(d, a, b)),
        rrr.clone().prop_map(|(d, a, b)| Insn::Mac(d, a, b)),
        rrr.clone().prop_map(|(d, a, b)| Insn::SdotV4(d, a, b)),
        rrr.clone().prop_map(|(d, a, b)| Insn::SdotV2(d, a, b)),
        rrr.clone().prop_map(|(d, a, b)| Insn::Min(d, a, b)),
        rrr.prop_map(|(d, a, b)| Insn::Max(d, a, b)),
        (any_reg(), any_reg(), any_reg(), any_reg(), any::<bool>()).prop_map(|(h, l, a, b, s)| {
            Insn::Mull {
                rd_hi: h,
                rd_lo: l,
                ra: a,
                rb: b,
                signed: s,
            }
        }),
        (any_reg(), any_reg(), any_reg(), any_reg(), any::<bool>()).prop_map(|(h, l, a, b, s)| {
            Insn::Mlal {
                rd_hi: h,
                rd_lo: l,
                ra: a,
                rb: b,
                signed: s,
            }
        }),
        (any_reg(), any_reg(), imm14_s()).prop_map(|(d, a, i)| Insn::Addi(d, a, i)),
        (any_reg(), any_reg(), imm14_u()).prop_map(|(d, a, i)| Insn::Ori(d, a, i)),
        (any_reg(), any_reg(), 0u8..32).prop_map(|(d, a, s)| Insn::Slli(d, a, s)),
        (any_reg(), any_reg(), 0u8..32).prop_map(|(d, a, s)| Insn::Srai(d, a, s)),
        (any_reg(), 0u32..0x40000).prop_map(|(d, i)| Insn::Lui(d, i)),
        (
            any_reg(),
            any_reg(),
            imm14_s(),
            any_mem_size(),
            any::<bool>()
        )
            .prop_map(|(rd, base, offset, size, signed)| {
                let signed = signed || size == MemSize::Word;
                Insn::Load {
                    rd,
                    base,
                    offset,
                    size,
                    signed,
                }
            }),
        (
            any_reg(),
            any_reg(),
            imm14_s(),
            any_mem_size(),
            any::<bool>()
        )
            .prop_map(|(rd, base, inc, size, signed)| {
                let signed = signed || size == MemSize::Word;
                Insn::LoadPi {
                    rd,
                    base,
                    inc,
                    size,
                    signed,
                }
            }),
        (any_reg(), any_reg(), imm14_s(), any_mem_size()).prop_map(|(rs, base, offset, size)| {
            Insn::Store {
                rs,
                base,
                offset,
                size,
            }
        }),
        (any_reg(), any_reg(), imm14_s(), any_mem_size()).prop_map(|(rs, base, inc, size)| {
            Insn::StorePi {
                rs,
                base,
                inc,
                size,
            }
        }),
        (any_reg(), any_reg()).prop_map(|(d, a)| Insn::Tas(d, a)),
        (any_reg(), any_reg(), any_off14()).prop_map(|(a, b, o)| Insn::Beq(a, b, o)),
        (any_reg(), any_reg(), any_off14()).prop_map(|(a, b, o)| Insn::Bne(a, b, o)),
        (any_reg(), any_reg(), any_off14()).prop_map(|(a, b, o)| Insn::Blt(a, b, o)),
        (any_reg(), any_reg(), any_off14()).prop_map(|(a, b, o)| Insn::Bgeu(a, b, o)),
        (any_reg(), (-262144i32..262144).prop_map(|w| w * 4)).prop_map(|(d, o)| Insn::Jal(d, o)),
        (any_reg(), any_reg(), imm14_s()).prop_map(|(d, a, i)| Insn::Jalr(d, a, i)),
        (0u8..2, any_reg(), (2i32..8192).prop_map(|w| w * 4)).prop_map(|(idx, count, body_end)| {
            Insn::LpSetup {
                idx,
                count,
                body_end,
            }
        }),
        (
            any_reg(),
            prop_oneof![
                Just(Csr::CoreId),
                Just(Csr::NumCores),
                Just(Csr::CycleLo),
                Just(Csr::InstRetLo)
            ]
        )
            .prop_map(|(d, c)| Insn::Csrr(d, c)),
        Just(Insn::Nop),
        Just(Insn::Halt),
        Just(Insn::Wfe),
        any::<u8>().prop_map(Insn::Sev),
        Just(Insn::Barrier),
    ]
}

proptest! {
    /// Every encodable instruction decodes back to itself.
    #[test]
    fn encode_decode_roundtrip(insn in any_insn()) {
        let word = encode(&insn).expect("strategy only produces encodable instructions");
        let back = decode(word).expect("decodes");
        prop_assert_eq!(insn, back);
    }

    /// Decoding never panics on arbitrary words.
    #[test]
    fn decode_is_total(word in any::<u32>()) {
        let _ = decode(word);
    }

    /// If an arbitrary word decodes, re-encoding reproduces a word that
    /// decodes to the same instruction (canonicalization is stable).
    #[test]
    fn decode_encode_stable(word in any::<u32>()) {
        if let Ok(insn) = decode(word) {
            if let Ok(word2) = encode(&insn) {
                prop_assert_eq!(decode(word2).unwrap(), insn);
            }
        }
    }

    /// The interpreter computes the same sums as Rust for random inputs
    /// (an end-to-end sanity check of loads, ALU, branches).
    #[test]
    fn interpreter_sums_match_reference(values in prop::collection::vec(any::<i32>(), 1..64)) {
        use ulp_isa::Insn;

        let mut a = Asm::new();
        let data = 0x4000i32;
        a.li(R1, data);
        a.li(R2, values.len() as i32);
        a.li(R3, 0);
        let top = a.new_label();
        a.bind(top);
        a.lw(R4, R1, 0);
        a.add(R3, R3, R4);
        a.addi(R1, R1, 4);
        a.addi(R2, R2, -1);
        a.bne(R2, R0, top);
        a.halt();
        let prog = a.finish().unwrap();

        let mut mem = FlatMemory::new(0, 64 * 1024);
        mem.load_program(&prog, 0).unwrap();
        for (i, v) in values.iter().enumerate() {
            mem.write_u32(data as u32 + 4 * i as u32, *v as u32).unwrap();
        }
        let mut core = Core::new(0, CoreModel::risc_baseline());
        core.reset(0);
        core.run(&mut mem, 10_000_000).unwrap();

        let expect: i32 = values.iter().fold(0i32, |acc, v| acc.wrapping_add(*v));
        prop_assert_eq!(core.reg(R3) as i32, expect);

        // Sanity: instruction accounting matches the loop trip count.
        let _ = Insn::Nop;
        prop_assert_eq!(core.stats().retired, 4 + 5 * values.len() as u64);
    }

    /// Hardware loops and software loops compute identical results.
    #[test]
    fn hw_loop_equals_sw_loop(n in 1u32..200) {
        let run = |hw: bool| {
            let mut a = Asm::new();
            a.li(R1, n as i32);
            a.li(R2, 0);
            if hw {
                a.hw_loop(0, R1, |a| {
                    a.addi(R2, R2, 3);
                    a.nop();
                });
            } else {
                let top = a.new_label();
                a.bind(top);
                a.addi(R2, R2, 3);
                a.addi(R1, R1, -1);
                a.bne(R1, R0, top);
            }
            a.halt();
            let prog = a.finish().unwrap();
            let mut mem = FlatMemory::new(0, 4096);
            mem.load_program(&prog, 0).unwrap();
            let mut core = Core::new(0, CoreModel::or10n());
            core.reset(0);
            core.run(&mut mem, 1_000_000).unwrap();
            (core.reg(R2), core.time())
        };
        let (hw_result, hw_time) = run(true);
        let (sw_result, sw_time) = run(false);
        prop_assert_eq!(hw_result, 3 * n);
        prop_assert_eq!(sw_result, 3 * n);
        prop_assert!(hw_time <= sw_time);
    }
}

proptest! {
    /// Textual assembly round-trips: parsing an instruction's Display
    /// form yields the identical instruction.
    #[test]
    fn display_parse_roundtrip(insn in any_insn()) {
        let text = insn.to_string();
        let back = ulp_isa::parse_insn(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        prop_assert_eq!(insn, back);
    }

    /// Whole listings re-assemble bit-identically.
    #[test]
    fn listing_roundtrip(insns in prop::collection::vec(any_insn(), 1..40)) {
        let mut a = Asm::new();
        for i in &insns {
            a.insn(*i);
        }
        let Ok(prog) = a.finish() else { return Ok(()); };
        let reparsed = ulp_isa::parse_program(&prog.listing()).unwrap();
        prop_assert_eq!(reparsed.insns(), prog.insns());
        prop_assert_eq!(reparsed.words(), prog.words());
    }
}

proptest! {
    /// The assembly parser never panics, whatever bytes it is fed.
    #[test]
    fn parser_is_total(input in "\\PC{0,200}") {
        let _ = ulp_isa::parse_insn(&input);
        let _ = ulp_isa::parse_program(&input);
    }

    /// Near-miss inputs (mnemonic-shaped garbage) also never panic.
    #[test]
    fn parser_survives_mnemonic_garbage(
        m in "(add|lw|beq|lp\\.setup|smull|csrr|sev)",
        junk in "[a-z0-9 ,():+-]{0,40}"
    ) {
        let line = format!("{m} {junk}");
        let _ = ulp_isa::parse_insn(&line);
        let _ = ulp_isa::parse_program(&line);
    }
}
