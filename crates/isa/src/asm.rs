//! A small macro-assembler for UIR with labels and structured helpers.
//!
//! [`Asm`] is the back-end all kernel code generators target (the role the
//! LLVM OR10N / GCC ARM toolchains play in the paper). It supports forward
//! references through [`Label`]s, synthesizes multi-instruction idioms
//! (`li`, 32-bit constants), manages a read-only data section for lookup
//! tables, and provides a structured [`Asm::hw_loop`] helper that computes
//! hardware-loop body offsets automatically.
//!
//! # Example
//!
//! ```
//! use ulp_isa::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new();
//! a.li(R1, 3);
//! let done = a.new_label();
//! a.beq(R1, R0, done);
//! a.addi(R2, R2, 1);
//! a.bind(done);
//! a.halt();
//! let prog = a.finish()?;
//! assert_eq!(prog.text_bytes(), prog.insns().len() * 4);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::encode::{encode, EncodeError};
use crate::insn::{Insn, MemSize};
use crate::reg::Reg;

/// A forward-referenceable code position.
///
/// Created with [`Asm::new_label`], placed with [`Asm::bind`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// Error produced while assembling a program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A referenced label was never [`Asm::bind`]-ed.
    UnboundLabel(Label),
    /// A label was bound twice.
    RebindLabel(Label),
    /// A hardware-loop body has fewer than two instructions (PULP
    /// hardware-loop constraint).
    HwLoopTooShort,
    /// An operand does not fit its encoding field.
    Encode(EncodeError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {l:?} was never bound"),
            AsmError::RebindLabel(l) => write!(f, "label {l:?} bound twice"),
            AsmError::HwLoopTooShort => {
                write!(
                    f,
                    "hardware loop body must contain at least two instructions"
                )
            }
            AsmError::Encode(e) => write!(f, "encoding failed: {e}"),
        }
    }
}

impl Error for AsmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AsmError::Encode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> Self {
        AsmError::Encode(e)
    }
}

#[derive(Clone, Copy, Debug)]
enum Patch {
    /// Patch the branch offset field (byte offset label − insn).
    Branch(Label),
    /// Patch a `jal` offset.
    Jal(Label),
    /// Patch an `lp.setup` body end: label is bound *after* the last body
    /// instruction; `body_end = label − 4 − insn`.
    LoopEnd(Label),
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    insn: Insn,
    patch: Option<Patch>,
}

/// An assembled program: decoded instructions, their binary encoding, and a
/// read-only data section.
///
/// The binary image laid out by
/// [`FlatMemory::load_program`](crate::mem::FlatMemory::load_program) is
/// `text ++ rodata` with the
/// rodata 4-byte aligned; [`Program::binary_size`] is the byte count that
/// travels over the SPI link during a code offload (paper Table I "Binary
/// Size").
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    insns: Vec<Insn>,
    words: Vec<u32>,
    rodata: Vec<u8>,
    symbols: HashMap<String, u32>,
}

impl Program {
    /// Decoded instruction sequence.
    #[must_use]
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// Encoded instruction words.
    #[must_use]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Read-only data section contents.
    #[must_use]
    pub fn rodata(&self) -> &[u8] {
        &self.rodata
    }

    /// Size of the text section in bytes.
    #[must_use]
    pub fn text_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Byte offset of the rodata section from the load address (text size
    /// rounded up to 4 bytes).
    #[must_use]
    pub fn rodata_offset(&self) -> usize {
        (self.text_bytes() + 3) & !3
    }

    /// Total binary size in bytes (text + rodata): the payload of a code
    /// offload.
    #[must_use]
    pub fn binary_size(&self) -> usize {
        self.rodata_offset() + self.rodata.len()
    }

    /// Looks up a named symbol (byte offset from the load address).
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Renders the program as an assembly listing (one instruction per
    /// line, addresses relative to the load address).
    #[must_use]
    pub fn listing(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        for (i, insn) in self.insns.iter().enumerate() {
            let _ = writeln!(out, "{:#06x}:  {}", i * 4, insn);
        }
        out
    }
}

/// The assembler. See the [module documentation](self) for an example.
#[derive(Clone, Debug, Default)]
pub struct Asm {
    slots: Vec<Slot>,
    labels: Vec<Option<usize>>, // label -> instruction index
    rodata: Vec<u8>,
    symbols: HashMap<String, u32>,
}

impl Asm {
    /// Creates an empty assembler.
    #[must_use]
    pub fn new() -> Self {
        Asm::default()
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no instructions have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current position as a byte offset from the program start.
    #[must_use]
    pub fn here(&self) -> u32 {
        (self.slots.len() * 4) as u32
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (programming error in the code
    /// generator).
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label {label:?} bound twice"
        );
        self.labels[label.0] = Some(self.slots.len());
    }

    /// Records the current position under `name` in the symbol table.
    pub fn symbol(&mut self, name: &str) {
        let here = self.here();
        self.symbols.insert(name.to_owned(), here);
    }

    /// Emits a raw instruction.
    pub fn insn(&mut self, insn: Insn) -> &mut Self {
        self.slots.push(Slot { insn, patch: None });
        self
    }

    /// Appends `bytes` to the read-only data section (4-byte aligned) and
    /// returns the byte offset of the data *within the rodata section*.
    pub fn add_rodata(&mut self, bytes: &[u8]) -> u32 {
        while !self.rodata.len().is_multiple_of(4) {
            self.rodata.push(0);
        }
        let off = self.rodata.len() as u32;
        self.rodata.extend_from_slice(bytes);
        off
    }

    // ---- pseudo-instructions -------------------------------------------

    /// Loads a 32-bit constant, using one instruction when it fits.
    pub fn li(&mut self, rd: Reg, value: i32) -> &mut Self {
        if (-8192..=8191).contains(&value) {
            self.insn(Insn::Addi(rd, Reg::ZERO, value as i16));
        } else {
            let v = value as u32;
            self.insn(Insn::Lui(rd, v >> 14));
            if v & 0x3FFF != 0 {
                self.insn(Insn::Ori(rd, rd, (v & 0x3FFF) as u16));
            }
        }
        self
    }

    /// Loads an address constant (alias of [`Asm::li`] for clarity).
    pub fn la(&mut self, rd: Reg, addr: u32) -> &mut Self {
        self.li(rd, addr as i32)
    }

    /// Register-to-register move.
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.insn(Insn::Add(rd, rs, Reg::ZERO))
    }

    /// Unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.slots.push(Slot {
            insn: Insn::Jal(Reg::ZERO, 0),
            patch: Some(Patch::Jal(label)),
        });
        self
    }

    /// Call (`jal rd, label`).
    pub fn jal_to(&mut self, rd: Reg, label: Label) -> &mut Self {
        self.slots.push(Slot {
            insn: Insn::Jal(rd, 0),
            patch: Some(Patch::Jal(label)),
        });
        self
    }

    /// Return through `ra` (`jalr r0, ra, 0`).
    pub fn ret(&mut self, ra: Reg) -> &mut Self {
        self.insn(Insn::Jalr(Reg::ZERO, ra, 0))
    }

    /// Emits a hardware loop executing `body` `count`-register times.
    ///
    /// Computes the `lp.setup` end offset from the body length. The body
    /// must emit at least two instructions (checked at [`Asm::finish`]).
    pub fn hw_loop(&mut self, idx: u8, count: Reg, body: impl FnOnce(&mut Asm)) -> &mut Self {
        let end = self.new_label();
        self.slots.push(Slot {
            insn: Insn::LpSetup {
                idx,
                count,
                body_end: 0,
            },
            patch: Some(Patch::LoopEnd(end)),
        });
        body(self);
        self.bind(end);
        self
    }

    // ---- per-instruction convenience methods ----------------------------

    /// `rd = ra + rb`
    pub fn add(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.insn(Insn::Add(rd, ra, rb))
    }
    /// `rd = ra - rb`
    pub fn sub(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.insn(Insn::Sub(rd, ra, rb))
    }
    /// `rd = low32(ra * rb)`
    pub fn mul(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.insn(Insn::Mul(rd, ra, rb))
    }
    /// `rd += ra * rb` (requires `mac`)
    pub fn mac(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.insn(Insn::Mac(rd, ra, rb))
    }
    /// `rd = ra + imm`
    pub fn addi(&mut self, rd: Reg, ra: Reg, imm: i16) -> &mut Self {
        self.insn(Insn::Addi(rd, ra, imm))
    }
    /// `rd = ra << sh`
    pub fn slli(&mut self, rd: Reg, ra: Reg, sh: u8) -> &mut Self {
        self.insn(Insn::Slli(rd, ra, sh))
    }
    /// `rd = ra >> sh` (logical)
    pub fn srli(&mut self, rd: Reg, ra: Reg, sh: u8) -> &mut Self {
        self.insn(Insn::Srli(rd, ra, sh))
    }
    /// `rd = ra >> sh` (arithmetic)
    pub fn srai(&mut self, rd: Reg, ra: Reg, sh: u8) -> &mut Self {
        self.insn(Insn::Srai(rd, ra, sh))
    }
    /// No operation.
    pub fn nop(&mut self) -> &mut Self {
        self.insn(Insn::Nop)
    }
    /// Halt the core.
    pub fn halt(&mut self) -> &mut Self {
        self.insn(Insn::Halt)
    }
    /// Wait for event.
    pub fn wfe(&mut self) -> &mut Self {
        self.insn(Insn::Wfe)
    }
    /// Send event `id`.
    pub fn sev(&mut self, id: u8) -> &mut Self {
        self.insn(Insn::Sev(id))
    }
    /// Cluster barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.insn(Insn::Barrier)
    }

    /// Word load `rd = mem32[base + offset]`.
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i16) -> &mut Self {
        self.insn(Insn::Load {
            rd,
            base,
            offset,
            size: MemSize::Word,
            signed: true,
        })
    }
    /// Word store `mem32[base + offset] = rs`.
    pub fn sw(&mut self, rs: Reg, base: Reg, offset: i16) -> &mut Self {
        self.insn(Insn::Store {
            rs,
            base,
            offset,
            size: MemSize::Word,
        })
    }
    /// Signed halfword load.
    pub fn lh(&mut self, rd: Reg, base: Reg, offset: i16) -> &mut Self {
        self.insn(Insn::Load {
            rd,
            base,
            offset,
            size: MemSize::Half,
            signed: true,
        })
    }
    /// Halfword store.
    pub fn sh(&mut self, rs: Reg, base: Reg, offset: i16) -> &mut Self {
        self.insn(Insn::Store {
            rs,
            base,
            offset,
            size: MemSize::Half,
        })
    }
    /// Signed byte load.
    pub fn lb(&mut self, rd: Reg, base: Reg, offset: i16) -> &mut Self {
        self.insn(Insn::Load {
            rd,
            base,
            offset,
            size: MemSize::Byte,
            signed: true,
        })
    }
    /// Unsigned byte load.
    pub fn lbu(&mut self, rd: Reg, base: Reg, offset: i16) -> &mut Self {
        self.insn(Insn::Load {
            rd,
            base,
            offset,
            size: MemSize::Byte,
            signed: false,
        })
    }
    /// Byte store.
    pub fn sb(&mut self, rs: Reg, base: Reg, offset: i16) -> &mut Self {
        self.insn(Insn::Store {
            rs,
            base,
            offset,
            size: MemSize::Byte,
        })
    }

    fn branch_to(&mut self, make: impl FnOnce(i32) -> Insn, label: Label) -> &mut Self {
        self.slots.push(Slot {
            insn: make(0),
            patch: Some(Patch::Branch(label)),
        });
        self
    }

    /// Branch to `label` if `ra == rb`.
    pub fn beq(&mut self, ra: Reg, rb: Reg, label: Label) -> &mut Self {
        self.branch_to(|o| Insn::Beq(ra, rb, o), label)
    }
    /// Branch to `label` if `ra != rb`.
    pub fn bne(&mut self, ra: Reg, rb: Reg, label: Label) -> &mut Self {
        self.branch_to(|o| Insn::Bne(ra, rb, o), label)
    }
    /// Branch to `label` if `ra < rb` (signed).
    pub fn blt(&mut self, ra: Reg, rb: Reg, label: Label) -> &mut Self {
        self.branch_to(|o| Insn::Blt(ra, rb, o), label)
    }
    /// Branch to `label` if `ra >= rb` (signed).
    pub fn bge(&mut self, ra: Reg, rb: Reg, label: Label) -> &mut Self {
        self.branch_to(|o| Insn::Bge(ra, rb, o), label)
    }
    /// Branch to `label` if `ra < rb` (unsigned).
    pub fn bltu(&mut self, ra: Reg, rb: Reg, label: Label) -> &mut Self {
        self.branch_to(|o| Insn::Bltu(ra, rb, o), label)
    }
    /// Branch to `label` if `ra >= rb` (unsigned).
    pub fn bgeu(&mut self, ra: Reg, rb: Reg, label: Label) -> &mut Self {
        self.branch_to(|o| Insn::Bgeu(ra, rb, o), label)
    }

    /// Resolves labels, validates hardware loops, and encodes the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] on unbound labels, too-short hardware-loop
    /// bodies, or operands that do not fit their encodings.
    pub fn finish(self) -> Result<Program, AsmError> {
        let resolve = |label: Label| -> Result<i64, AsmError> {
            self.labels[label.0]
                .map(|idx| (idx * 4) as i64)
                .ok_or(AsmError::UnboundLabel(label))
        };

        let mut insns = Vec::with_capacity(self.slots.len());
        for (idx, slot) in self.slots.iter().enumerate() {
            let at = (idx * 4) as i64;
            let insn = match slot.patch {
                None => slot.insn,
                Some(Patch::Branch(l)) => {
                    let off = (resolve(l)? - at) as i32;
                    match slot.insn {
                        Insn::Beq(a, b, _) => Insn::Beq(a, b, off),
                        Insn::Bne(a, b, _) => Insn::Bne(a, b, off),
                        Insn::Blt(a, b, _) => Insn::Blt(a, b, off),
                        Insn::Bge(a, b, _) => Insn::Bge(a, b, off),
                        Insn::Bltu(a, b, _) => Insn::Bltu(a, b, off),
                        Insn::Bgeu(a, b, _) => Insn::Bgeu(a, b, off),
                        other => other,
                    }
                }
                Some(Patch::Jal(l)) => {
                    let off = (resolve(l)? - at) as i32;
                    match slot.insn {
                        Insn::Jal(rd, _) => Insn::Jal(rd, off),
                        other => other,
                    }
                }
                Some(Patch::LoopEnd(l)) => {
                    // Label sits after the last body instruction.
                    let body_end = (resolve(l)? - 4 - at) as i32;
                    if body_end < 8 {
                        return Err(AsmError::HwLoopTooShort);
                    }
                    match slot.insn {
                        Insn::LpSetup { idx, count, .. } => Insn::LpSetup {
                            idx,
                            count,
                            body_end,
                        },
                        other => other,
                    }
                }
            };
            insns.push(insn);
        }

        let words = insns
            .iter()
            .map(encode)
            .collect::<Result<Vec<_>, _>>()
            .map_err(AsmError::from)?;

        Ok(Program {
            insns,
            words,
            rodata: self.rodata,
            symbols: self.symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::named::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new();
        let fwd = a.new_label();
        let back = a.new_label();
        a.bind(back);
        a.nop();
        a.beq(R0, R0, fwd);
        a.bne(R1, R2, back);
        a.bind(fwd);
        a.halt();
        let prog = a.finish().unwrap();
        assert_eq!(prog.insns()[1], Insn::Beq(R0, R0, 8));
        assert_eq!(prog.insns()[2], Insn::Bne(R1, R2, -8));
    }

    #[test]
    fn unbound_label_is_reported() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.beq(R0, R0, l);
        assert!(matches!(a.finish(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn rebinding_panics() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn li_small_is_one_insn() {
        let mut a = Asm::new();
        a.li(R1, 100);
        a.li(R2, -8192);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn li_large_synthesizes_constant() {
        let mut a = Asm::new();
        a.li(R1, 0x1234_5678);
        a.halt();
        let prog = a.finish().unwrap();
        assert_eq!(prog.insns()[0], Insn::Lui(R1, 0x1234_5678u32 >> 14));
        assert_eq!(
            prog.insns()[1],
            Insn::Ori(R1, R1, (0x1234_5678u32 & 0x3FFF) as u16)
        );
    }

    #[test]
    fn hw_loop_offset_points_to_last_body_insn() {
        let mut a = Asm::new();
        a.li(R1, 4);
        a.hw_loop(0, R1, |a| {
            a.nop();
            a.nop();
            a.nop();
        });
        a.halt();
        let prog = a.finish().unwrap();
        // lp.setup at index 1; body = 3 insns at indices 2,3,4.
        assert_eq!(
            prog.insns()[1],
            Insn::LpSetup {
                idx: 0,
                count: R1,
                body_end: 12
            }
        );
    }

    #[test]
    fn hw_loop_too_short_rejected() {
        let mut a = Asm::new();
        a.li(R1, 4);
        a.hw_loop(0, R1, |a| {
            a.nop();
        });
        assert!(matches!(a.finish(), Err(AsmError::HwLoopTooShort)));
    }

    #[test]
    fn rodata_alignment_and_offsets() {
        let mut a = Asm::new();
        let o1 = a.add_rodata(&[1, 2, 3]);
        let o2 = a.add_rodata(&[4, 5, 6, 7]);
        a.nop();
        a.halt();
        let prog = a.finish().unwrap();
        assert_eq!(o1, 0);
        assert_eq!(o2, 4); // aligned up
        assert_eq!(prog.rodata().len(), 8);
        assert_eq!(prog.binary_size(), 2 * 4 + 8);
    }

    #[test]
    fn symbols_record_positions() {
        let mut a = Asm::new();
        a.nop();
        a.symbol("entry2");
        a.nop();
        a.halt();
        let prog = a.finish().unwrap();
        assert_eq!(prog.symbol("entry2"), Some(4));
        assert_eq!(prog.symbol("missing"), None);
    }

    #[test]
    fn listing_contains_every_instruction() {
        let mut a = Asm::new();
        a.li(R1, 5);
        a.halt();
        let prog = a.finish().unwrap();
        let listing = prog.listing();
        assert!(listing.contains("addi r1, r0, 5"));
        assert!(listing.contains("halt"));
    }

    #[test]
    fn words_match_insns() {
        let mut a = Asm::new();
        a.add(R1, R2, R3);
        a.halt();
        let prog = a.finish().unwrap();
        assert_eq!(prog.words().len(), prog.insns().len());
        for (w, i) in prog.words().iter().zip(prog.insns()) {
            assert_eq!(crate::encode::decode(*w).unwrap(), *i);
        }
    }
}
