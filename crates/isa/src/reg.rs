//! General-purpose register file names.
//!
//! UIR has 32 registers. `r0` is hardwired to zero, as in MIPS/RISC-V and
//! OpenRISC's `r0` convention used by the OR10N cores of the PULP cluster.

use std::fmt;

/// A general-purpose register index in `0..32`.
///
/// `Reg(0)` always reads as zero and ignores writes.
///
/// # Example
///
/// ```
/// use ulp_isa::Reg;
/// let r = Reg::new(5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "r5");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired zero register.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(index < 32, "register index out of range (0..32)");
        Reg(index)
    }

    /// Creates a register from its index, returning `None` if out of range.
    #[must_use]
    pub fn try_new(index: u8) -> Option<Self> {
        (index < 32).then_some(Reg(index))
    }

    /// The register index in `0..32`.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

/// Named constants `R0..R31` for all registers.
///
/// Import with `use ulp_isa::reg::named::*;` or via the crate prelude.
pub mod named {
    use super::Reg;

    macro_rules! defregs {
        ($($name:ident = $idx:expr),* $(,)?) => {
            $(
                #[doc = concat!("Register r", stringify!($idx), ".")]
                pub const $name: Reg = Reg($idx);
            )*
        };
    }

    defregs!(
        R0 = 0,
        R1 = 1,
        R2 = 2,
        R3 = 3,
        R4 = 4,
        R5 = 5,
        R6 = 6,
        R7 = 7,
        R8 = 8,
        R9 = 9,
        R10 = 10,
        R11 = 11,
        R12 = 12,
        R13 = 13,
        R14 = 14,
        R15 = 15,
        R16 = 16,
        R17 = 17,
        R18 = 18,
        R19 = 19,
        R20 = 20,
        R21 = 21,
        R22 = 22,
        R23 = 23,
        R24 = 24,
        R25 = 25,
        R26 = 26,
        R27 = 27,
        R28 = 28,
        R29 = 29,
        R30 = 30,
        R31 = 31,
    );
}

#[cfg(test)]
mod tests {
    use super::named::*;
    use super::*;

    #[test]
    fn zero_register_identity() {
        assert!(R0.is_zero());
        assert!(!R1.is_zero());
        assert_eq!(Reg::ZERO, R0);
    }

    #[test]
    fn index_roundtrip() {
        for i in 0..32 {
            assert_eq!(Reg::new(i).index(), i);
            assert_eq!(Reg::try_new(i), Some(Reg::new(i)));
        }
        assert_eq!(Reg::try_new(32), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn display_format() {
        assert_eq!(R17.to_string(), "r17");
        assert_eq!(format!("{R0}"), "r0");
    }
}
