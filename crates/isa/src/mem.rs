//! A flat, single-cycle memory implementing [`Bus`].
//!
//! [`FlatMemory`] models the unified SRAM of a host microcontroller (and is
//! also handy in tests): every access completes in one cycle and there is no
//! contention. The PULP cluster's banked TCDM with arbitration lives in the
//! `ulp-cluster` crate.

use std::sync::Arc;

use crate::asm::Program;
use crate::decode_cache::DecodeCache;
use crate::exec::{Access, Bus, BusError, Fetched};
use crate::features::CoreModel;
use crate::insn::MemSize;
use crate::uop::{Block, BlockCache};

/// Width-specialized little-endian read of `size` bytes at `off`.
///
/// The caller has already bounds-checked `off + size.bytes()`; this is the
/// single definition of the byte-to-value packing used by every memory
/// model (flat host RAM, TCDM, L2).
///
/// # Panics
///
/// Panics if the range is out of bounds (callers validate first).
#[inline]
#[must_use]
pub fn load_le(data: &[u8], off: usize, size: MemSize) -> u32 {
    match size {
        MemSize::Byte => u32::from(data[off]),
        MemSize::Half => u32::from(u16::from_le_bytes([data[off], data[off + 1]])),
        MemSize::Word => u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes")),
    }
}

/// Width-specialized little-endian write of `size` bytes at `off` (see
/// [`load_le`]).
///
/// # Panics
///
/// Panics if the range is out of bounds (callers validate first).
#[inline]
pub fn store_le(data: &mut [u8], off: usize, size: MemSize, value: u32) {
    match size {
        MemSize::Byte => data[off] = value as u8,
        MemSize::Half => data[off..off + 2].copy_from_slice(&(value as u16).to_le_bytes()),
        MemSize::Word => data[off..off + 4].copy_from_slice(&value.to_le_bytes()),
    }
}

/// Flat little-endian memory with one-cycle access latency.
///
/// # Example
///
/// ```
/// use ulp_isa::FlatMemory;
///
/// let mut mem = FlatMemory::new(0x2000_0000, 4096);
/// mem.write_u32(0x2000_0010, 0xDEAD_BEEF).unwrap();
/// assert_eq!(mem.read_u32(0x2000_0010).unwrap(), 0xDEAD_BEEF);
/// ```
#[derive(Clone, Debug)]
pub struct FlatMemory {
    base: u32,
    data: Vec<u8>,
    decoded: DecodeCache,
    blocks: BlockCache,
}

impl FlatMemory {
    /// Creates a zeroed memory of `size` bytes starting at `base`.
    #[must_use]
    pub fn new(base: u32, size: usize) -> Self {
        FlatMemory {
            base,
            data: vec![0; size],
            decoded: DecodeCache::new(size),
            blocks: BlockCache::new(size),
        }
    }

    /// Base address of the mapped region.
    #[must_use]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size of the mapped region in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.data.len()
    }

    fn index(&self, addr: u32, len: u32) -> Result<usize, BusError> {
        let off = addr.wrapping_sub(self.base) as usize;
        if addr < self.base || off + len as usize > self.data.len() {
            return Err(BusError::OutOfBounds { addr, size: len });
        }
        Ok(off)
    }

    /// Copies `bytes` into memory at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfBounds`] if the range is not fully mapped.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), BusError> {
        let off = self.index(addr, bytes.len() as u32)?;
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
        self.decoded.invalidate(off, bytes.len());
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfBounds`] if the range is not fully mapped.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Result<&[u8], BusError> {
        let off = self.index(addr, len as u32)?;
        Ok(&self.data[off..off + len])
    }

    /// Reads a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfBounds`] if the word is not fully mapped.
    pub fn read_u32(&self, addr: u32) -> Result<u32, BusError> {
        let b = self.read_bytes(addr, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Writes a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfBounds`] if the word is not fully mapped.
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), BusError> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Loads a [`Program`] image (text, then 4-byte-aligned rodata) at
    /// `addr` and returns the absolute address of the rodata section.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfBounds`] if the image does not fit.
    pub fn load_program(&mut self, prog: &Program, addr: u32) -> Result<u32, BusError> {
        let mut text = Vec::with_capacity(prog.text_bytes());
        for w in prog.words() {
            text.extend_from_slice(&w.to_le_bytes());
        }
        self.write_bytes(addr, &text)?;
        let rodata_base = addr + prog.rodata_offset() as u32;
        self.write_bytes(rodata_base, prog.rodata())?;
        // Predecode the text so the hot fetch loop never decodes;
        // undecodable words stay lazy (bit-identical error behaviour).
        let off = addr.wrapping_sub(self.base) as usize;
        self.decoded.predecode(off, text.len(), &self.data);
        Ok(rodata_base)
    }

    fn load_raw(&self, addr: u32, size: MemSize) -> Result<u32, BusError> {
        let off = self.index(addr, size.bytes())?;
        Ok(load_le(&self.data, off, size))
    }

    fn store_raw(&mut self, addr: u32, size: MemSize, value: u32) -> Result<(), BusError> {
        let n = size.bytes();
        let off = self.index(addr, n)?;
        store_le(&mut self.data, off, size, value);
        self.decoded.invalidate(off, n as usize);
        Ok(())
    }
}

impl Bus for FlatMemory {
    fn load(
        &mut self,
        _core_id: usize,
        now: u64,
        addr: u32,
        size: MemSize,
    ) -> Result<Access, BusError> {
        Ok(Access {
            value: self.load_raw(addr, size)?,
            ready_at: now + 1,
        })
    }

    fn store(
        &mut self,
        _core_id: usize,
        now: u64,
        addr: u32,
        size: MemSize,
        value: u32,
    ) -> Result<u64, BusError> {
        self.store_raw(addr, size, value)?;
        Ok(now + 1)
    }

    fn tas(&mut self, _core_id: usize, now: u64, addr: u32) -> Result<Access, BusError> {
        let old = self.load_raw(addr, MemSize::Word)?;
        self.store_raw(addr, MemSize::Word, 1)?;
        Ok(Access {
            value: old,
            ready_at: now + 1,
        })
    }

    fn fetch(&mut self, _core_id: usize, now: u64, pc: u32) -> Result<Fetched, BusError> {
        let off = self.index(pc, 4)?;
        let insn = self
            .decoded
            .fetch(off, &self.data)
            .ok_or(BusError::Unmapped { addr: pc })?;
        Ok(Fetched {
            insn,
            ready_at: now,
        })
    }

    fn microop_block(&mut self, _core_id: usize, pc: u32, model: &CoreModel) -> Option<Arc<Block>> {
        let off = self.index(pc, 4).ok()?;
        self.blocks
            .lookup(off, &self.data, &mut self.decoded, model)
    }

    fn code_generation(&self) -> u64 {
        self.decoded.generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::insn::Insn;
    use crate::reg::named::*;

    #[test]
    fn bytes_roundtrip_and_endianness() {
        let mut m = FlatMemory::new(0x100, 64);
        m.write_u32(0x100, 0x0403_0201).unwrap();
        assert_eq!(m.read_bytes(0x100, 4).unwrap(), &[1, 2, 3, 4]);
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut m = FlatMemory::new(0x100, 16);
        assert!(m.write_u32(0x110, 0).is_err());
        assert!(m.write_u32(0xFC, 0).is_err());
        assert!(m.read_bytes(0x10E, 4).is_err());
    }

    #[test]
    fn partial_width_access() {
        let mut m = FlatMemory::new(0, 16);
        m.store_raw(3, MemSize::Byte, 0xAB).unwrap();
        assert_eq!(m.load_raw(3, MemSize::Byte).unwrap(), 0xAB);
        m.store_raw(4, MemSize::Half, 0xBEEF).unwrap();
        assert_eq!(m.load_raw(4, MemSize::Half).unwrap(), 0xBEEF);
        // Unaligned word crossing is handled byte-wise.
        assert_eq!(m.load_raw(3, MemSize::Word).unwrap() & 0xFF, 0xAB);
    }

    #[test]
    fn program_image_layout() {
        let mut a = Asm::new();
        a.li(R1, 1);
        a.halt();
        let off = a.add_rodata(&[9, 8, 7, 6]);
        let prog = a.finish().unwrap();
        let mut m = FlatMemory::new(0, 1024);
        let rodata_base = m.load_program(&prog, 0x40).unwrap();
        assert_eq!(rodata_base, 0x40 + prog.rodata_offset() as u32);
        assert_eq!(m.read_bytes(rodata_base + off, 4).unwrap(), &[9, 8, 7, 6]);
    }

    #[test]
    fn fetch_decodes_and_caches() {
        let mut a = Asm::new();
        a.nop();
        a.halt();
        let prog = a.finish().unwrap();
        let mut m = FlatMemory::new(0, 64);
        m.load_program(&prog, 0).unwrap();
        let f1 = m.fetch(0, 0, 0).unwrap();
        assert_eq!(f1.insn, Insn::Nop);
        let f2 = m.fetch(0, 5, 0).unwrap();
        assert_eq!(f2.insn, Insn::Nop);
        assert_eq!(f2.ready_at, 5);
    }

    #[test]
    fn store_invalidates_decode_cache() {
        let mut a = Asm::new();
        a.nop();
        a.halt();
        let prog = a.finish().unwrap();
        let mut m = FlatMemory::new(0, 64);
        m.load_program(&prog, 0).unwrap();
        let _ = m.fetch(0, 0, 0).unwrap();
        // Overwrite the nop with a halt via a data store.
        let halt_word = crate::encode::encode(&Insn::Halt).unwrap();
        m.store(0, 0, 0, MemSize::Word, halt_word).unwrap();
        assert_eq!(m.fetch(0, 0, 0).unwrap().insn, Insn::Halt);
    }
}
