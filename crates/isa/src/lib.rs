//! # ulp-isa — UIR: a feature-gated RISC ISA for ultra-low-power core modelling
//!
//! This crate defines **UIR** (ULP Intermediate RISC), a small 32-bit
//! load/store instruction set together with:
//!
//! * a binary [`encode()`]/[`decode()`] layer (fixed 32-bit words),
//! * an [`Asm`] assembler with labels and structured loop helpers,
//! * a cycle-level in-order [`Core`] interpreter, and
//! * per-microarchitecture [`CoreModel`]s that gate ISA extensions and set
//!   instruction timings.
//!
//! UIR plays the role that the OR10N (extended OpenRISC) and ARMv7-M ISAs
//! play in the DATE'16 paper *"Enabling the Heterogeneous Accelerator Model
//! on Ultra-Low Power Microcontroller Platforms"*: the same kernel source
//! (here: a code generator) is lowered to the same base ISA, and each target
//! differs only in **which extensions are available** and **how many cycles
//! each instruction costs**. The paper itself estimates Cortex-M3 cycle
//! counts by disabling Cortex-M4 specific compiler flags; we reproduce that
//! methodology with explicit feature sets:
//!
//! | extension | OR10N | Cortex-M4 | Cortex-M3 | RISC baseline |
//! |---|---|---|---|---|
//! | register-register MAC        | ✓ (1 cy) | ✓ (1 cy) | ✓ (2 cy) | — |
//! | 4×8/2×16 SIMD dot product    | ✓ | — | — | — |
//! | hardware loops               | ✓ | — | — | — |
//! | post-increment load/store    | — | ✓ | ✓ | — |
//! | unaligned load/store         | ✓ | ✓ | ✓ | — |
//! | 32×32→64 multiply (`mull`)   | — | ✓ (1 cy) | ✓ (4 cy) | — |
//!
//! The *RISC baseline* configuration ("essentially equal to the OpenRISC
//! 1000 ISA … comparable to the original MIPS", paper §IV footnote 1) is used
//! to count the **RISC ops** of a benchmark: the number of instructions the
//! plainest possible in-order core retires.
//!
//! # Example
//!
//! ```
//! use ulp_isa::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Sum the integers 1..=10 into r3, then halt.
//! let mut a = Asm::new();
//! a.li(R1, 10); // counter
//! a.li(R3, 0); // accumulator
//! let top = a.new_label();
//! a.bind(top);
//! a.add(R3, R3, R1);
//! a.addi(R1, R1, -1);
//! a.bne(R1, R0, top);
//! a.halt();
//! let prog = a.finish()?;
//!
//! let mut mem = FlatMemory::new(0x0, 64 * 1024);
//! mem.load_program(&prog, 0x0)?;
//! let mut core = Core::new(0, CoreModel::or10n());
//! core.reset(0x0);
//! let run = core.run(&mut mem, 1_000_000)?;
//! assert_eq!(core.reg(R3), 55);
//! assert!(run.retired > 0);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod decode_cache;
pub mod encode;
pub mod exec;
pub mod features;
pub mod insn;
pub mod mem;
pub mod perf;
pub mod reg;
pub mod text;
pub mod uop;

pub use asm::{Asm, AsmError, Label, Program};
pub use decode_cache::DecodeCache;
pub use encode::{decode, encode, DecodeError};
pub use exec::{
    Access, BlockExit, Bus, BusError, Core, CoreState, CoreStats, ExecError, Fetched, RunSummary,
    StepOutcome, TraceEntry,
};
pub use features::{CoreModel, Features, Timing};
pub use insn::{Csr, Insn, MemSize};
pub use mem::{load_le, store_le, FlatMemory};
pub use reg::Reg;
pub use text::{parse_insn, parse_program, ParseError};
pub use uop::{Block, BlockCache, MicroOp, UopKind};

/// Convenient glob-import surface: registers, core types, assembler.
pub mod prelude {
    pub use crate::asm::{Asm, Label, Program};
    pub use crate::exec::{Bus, Core, RunSummary, StepOutcome};
    pub use crate::features::{CoreModel, Features};
    pub use crate::insn::{Csr, Insn, MemSize};
    pub use crate::mem::FlatMemory;
    pub use crate::reg::named::*;
    pub use crate::reg::Reg;
}
