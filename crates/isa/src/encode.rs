//! Binary encoding and decoding of UIR instructions.
//!
//! Every instruction encodes to one 32-bit little-endian word. The opcode
//! occupies bits `[31:24]`; remaining fields depend on the format:
//!
//! | format | fields |
//! |---|---|
//! | R (ALU)      | `rd[23:19] ra[18:14] rb[13:9]` |
//! | R4 (mull)    | `rd_hi[23:19] ra[18:14] rb[13:9] rd_lo[8:4] signed[0]` |
//! | I (imm)      | `rd[23:19] ra[18:14] imm14[13:0]` |
//! | SH (shift)   | `rd[23:19] ra[18:14] sh[13:9]` |
//! | U (lui)      | `rd[23:19] imm18[17:0]` |
//! | B (branch)   | `ra[23:19] rb[18:14] off14[13:0]` (word offset) |
//! | J (jal)      | `rd[23:19] off19[18:0]` (word offset) |
//! | L (lp.setup) | `idx[23] count[18:14] off14[13:0]` (word offset) |
//!
//! Binary size reported in the paper's Table I is the byte length of this
//! encoding plus read-only data, and is also what travels over the SPI link
//! during a code offload.

use std::error::Error;
use std::fmt;

use crate::insn::{Csr, Insn, MemSize};
use crate::reg::Reg;

/// Error produced when an instruction's operands do not fit its encoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EncodeError {
    /// An immediate or offset does not fit the field width.
    ImmOutOfRange {
        /// Value that failed to fit.
        value: i64,
        /// Field width in bits (after any word-offset scaling).
        bits: u8,
        /// Whether the field is signed.
        signed: bool,
    },
    /// A branch/jump/loop offset is not a multiple of 4.
    MisalignedOffset {
        /// Offending byte offset.
        offset: i32,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange {
                value,
                bits,
                signed,
            } => write!(
                f,
                "immediate {value} does not fit {} {bits}-bit field",
                if *signed { "signed" } else { "unsigned" }
            ),
            EncodeError::MisalignedOffset { offset } => {
                write!(f, "control-flow offset {offset} is not a multiple of 4")
            }
        }
    }
}

impl Error for EncodeError {}

/// Error produced when a word does not decode to a valid instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl Error for DecodeError {}

// Opcode space. Grouped by format for legibility.
mod op {
    pub const ADD: u8 = 0x01;
    pub const SUB: u8 = 0x02;
    pub const AND: u8 = 0x03;
    pub const OR: u8 = 0x04;
    pub const XOR: u8 = 0x05;
    pub const SLL: u8 = 0x06;
    pub const SRL: u8 = 0x07;
    pub const SRA: u8 = 0x08;
    pub const SLT: u8 = 0x09;
    pub const SLTU: u8 = 0x0A;
    pub const MIN: u8 = 0x0B;
    pub const MAX: u8 = 0x0C;
    pub const MUL: u8 = 0x0D;
    pub const DIV: u8 = 0x0E;
    pub const DIVU: u8 = 0x0F;
    pub const MAC: u8 = 0x10;
    pub const MULL: u8 = 0x11;
    pub const MLAL: u8 = 0x12;
    pub const SDOTV4: u8 = 0x13;
    pub const SDOTV2: u8 = 0x14;
    pub const ADDV4: u8 = 0x15;
    pub const ADDV2: u8 = 0x16;
    pub const SUBV4: u8 = 0x17;
    pub const SUBV2: u8 = 0x18;

    pub const ADDI: u8 = 0x20;
    pub const ANDI: u8 = 0x21;
    pub const ORI: u8 = 0x22;
    pub const XORI: u8 = 0x23;
    pub const SLLI: u8 = 0x24;
    pub const SRLI: u8 = 0x25;
    pub const SRAI: u8 = 0x26;
    pub const LUI: u8 = 0x27;

    pub const LB: u8 = 0x30;
    pub const LBU: u8 = 0x31;
    pub const LH: u8 = 0x32;
    pub const LHU: u8 = 0x33;
    pub const LW: u8 = 0x34;
    pub const SB: u8 = 0x35;
    pub const SH: u8 = 0x36;
    pub const SW: u8 = 0x37;
    pub const LB_PI: u8 = 0x38;
    pub const LBU_PI: u8 = 0x39;
    pub const LH_PI: u8 = 0x3A;
    pub const LHU_PI: u8 = 0x3B;
    pub const LW_PI: u8 = 0x3C;
    pub const SB_PI: u8 = 0x3D;
    pub const SH_PI: u8 = 0x3E;
    pub const SW_PI: u8 = 0x3F;
    pub const TAS: u8 = 0x40;

    pub const BEQ: u8 = 0x50;
    pub const BNE: u8 = 0x51;
    pub const BLT: u8 = 0x52;
    pub const BGE: u8 = 0x53;
    pub const BLTU: u8 = 0x54;
    pub const BGEU: u8 = 0x55;
    pub const JAL: u8 = 0x56;
    pub const JALR: u8 = 0x57;
    pub const LP_SETUP: u8 = 0x58;

    pub const CSRR: u8 = 0x60;
    pub const NOP: u8 = 0x61;
    pub const HALT: u8 = 0x62;
    pub const WFE: u8 = 0x63;
    pub const SEV: u8 = 0x64;
    pub const BARRIER: u8 = 0x65;
}

fn fit_signed(value: i64, bits: u8) -> Result<u32, EncodeError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if value < min || value > max {
        return Err(EncodeError::ImmOutOfRange {
            value,
            bits,
            signed: true,
        });
    }
    Ok((value as u32) & ((1u32 << bits) - 1))
}

fn fit_unsigned(value: u32, bits: u8) -> Result<u32, EncodeError> {
    if u64::from(value) >= (1u64 << bits) {
        return Err(EncodeError::ImmOutOfRange {
            value: i64::from(value),
            bits,
            signed: false,
        });
    }
    Ok(value)
}

fn word_offset(offset: i32, bits: u8) -> Result<u32, EncodeError> {
    if offset % 4 != 0 {
        return Err(EncodeError::MisalignedOffset { offset });
    }
    fit_signed(i64::from(offset / 4), bits)
}

fn r(op: u8, rd: Reg, ra: Reg, rb: Reg) -> u32 {
    (u32::from(op) << 24)
        | (u32::from(rd.index()) << 19)
        | (u32::from(ra.index()) << 14)
        | (u32::from(rb.index()) << 9)
}

fn i_signed(op: u8, rd: Reg, ra: Reg, imm: i16) -> Result<u32, EncodeError> {
    let field = fit_signed(i64::from(imm), 14)?;
    Ok((u32::from(op) << 24)
        | (u32::from(rd.index()) << 19)
        | (u32::from(ra.index()) << 14)
        | field)
}

fn i_unsigned(op: u8, rd: Reg, ra: Reg, imm: u16) -> Result<u32, EncodeError> {
    let field = fit_unsigned(u32::from(imm), 14)?;
    Ok((u32::from(op) << 24)
        | (u32::from(rd.index()) << 19)
        | (u32::from(ra.index()) << 14)
        | field)
}

fn sh(op: u8, rd: Reg, ra: Reg, amount: u8) -> Result<u32, EncodeError> {
    let field = fit_unsigned(u32::from(amount), 5)?;
    Ok((u32::from(op) << 24)
        | (u32::from(rd.index()) << 19)
        | (u32::from(ra.index()) << 14)
        | (field << 9))
}

fn branch(op: u8, ra: Reg, rb: Reg, offset: i32) -> Result<u32, EncodeError> {
    let field = word_offset(offset, 14)?;
    Ok((u32::from(op) << 24)
        | (u32::from(ra.index()) << 19)
        | (u32::from(rb.index()) << 14)
        | field)
}

/// Encodes one instruction into its 32-bit word.
///
/// # Errors
///
/// Returns [`EncodeError`] when an immediate or offset does not fit its
/// field, or when a control-flow offset is not word-aligned.
pub fn encode(insn: &Insn) -> Result<u32, EncodeError> {
    use Insn::*;
    Ok(match *insn {
        Add(d, a, b) => r(op::ADD, d, a, b),
        Sub(d, a, b) => r(op::SUB, d, a, b),
        And(d, a, b) => r(op::AND, d, a, b),
        Or(d, a, b) => r(op::OR, d, a, b),
        Xor(d, a, b) => r(op::XOR, d, a, b),
        Sll(d, a, b) => r(op::SLL, d, a, b),
        Srl(d, a, b) => r(op::SRL, d, a, b),
        Sra(d, a, b) => r(op::SRA, d, a, b),
        Slt(d, a, b) => r(op::SLT, d, a, b),
        Sltu(d, a, b) => r(op::SLTU, d, a, b),
        Min(d, a, b) => r(op::MIN, d, a, b),
        Max(d, a, b) => r(op::MAX, d, a, b),
        Mul(d, a, b) => r(op::MUL, d, a, b),
        Div(d, a, b) => r(op::DIV, d, a, b),
        Divu(d, a, b) => r(op::DIVU, d, a, b),
        Mac(d, a, b) => r(op::MAC, d, a, b),
        Mull {
            rd_hi,
            rd_lo,
            ra,
            rb,
            signed,
        } => r(op::MULL, rd_hi, ra, rb) | (u32::from(rd_lo.index()) << 4) | u32::from(signed),
        Mlal {
            rd_hi,
            rd_lo,
            ra,
            rb,
            signed,
        } => r(op::MLAL, rd_hi, ra, rb) | (u32::from(rd_lo.index()) << 4) | u32::from(signed),
        SdotV4(d, a, b) => r(op::SDOTV4, d, a, b),
        SdotV2(d, a, b) => r(op::SDOTV2, d, a, b),
        AddV4(d, a, b) => r(op::ADDV4, d, a, b),
        AddV2(d, a, b) => r(op::ADDV2, d, a, b),
        SubV4(d, a, b) => r(op::SUBV4, d, a, b),
        SubV2(d, a, b) => r(op::SUBV2, d, a, b),
        Addi(d, a, imm) => i_signed(op::ADDI, d, a, imm)?,
        Andi(d, a, imm) => i_unsigned(op::ANDI, d, a, imm)?,
        Ori(d, a, imm) => i_unsigned(op::ORI, d, a, imm)?,
        Xori(d, a, imm) => i_unsigned(op::XORI, d, a, imm)?,
        Slli(d, a, s) => sh(op::SLLI, d, a, s)?,
        Srli(d, a, s) => sh(op::SRLI, d, a, s)?,
        Srai(d, a, s) => sh(op::SRAI, d, a, s)?,
        Lui(d, imm) => {
            let field = fit_unsigned(imm, 18)?;
            (u32::from(op::LUI) << 24) | (u32::from(d.index()) << 19) | field
        }
        Load {
            rd,
            base,
            offset,
            size,
            signed,
        } => {
            let opcode = match (size, signed) {
                (MemSize::Byte, true) => op::LB,
                (MemSize::Byte, false) => op::LBU,
                (MemSize::Half, true) => op::LH,
                (MemSize::Half, false) => op::LHU,
                (MemSize::Word, _) => op::LW,
            };
            i_signed(opcode, rd, base, offset)?
        }
        LoadPi {
            rd,
            base,
            inc,
            size,
            signed,
        } => {
            let opcode = match (size, signed) {
                (MemSize::Byte, true) => op::LB_PI,
                (MemSize::Byte, false) => op::LBU_PI,
                (MemSize::Half, true) => op::LH_PI,
                (MemSize::Half, false) => op::LHU_PI,
                (MemSize::Word, _) => op::LW_PI,
            };
            i_signed(opcode, rd, base, inc)?
        }
        Store {
            rs,
            base,
            offset,
            size,
        } => {
            let opcode = match size {
                MemSize::Byte => op::SB,
                MemSize::Half => op::SH,
                MemSize::Word => op::SW,
            };
            i_signed(opcode, rs, base, offset)?
        }
        StorePi {
            rs,
            base,
            inc,
            size,
        } => {
            let opcode = match size {
                MemSize::Byte => op::SB_PI,
                MemSize::Half => op::SH_PI,
                MemSize::Word => op::SW_PI,
            };
            i_signed(opcode, rs, base, inc)?
        }
        Tas(d, a) => r(op::TAS, d, a, Reg::ZERO),
        Beq(a, b, o) => branch(op::BEQ, a, b, o)?,
        Bne(a, b, o) => branch(op::BNE, a, b, o)?,
        Blt(a, b, o) => branch(op::BLT, a, b, o)?,
        Bge(a, b, o) => branch(op::BGE, a, b, o)?,
        Bltu(a, b, o) => branch(op::BLTU, a, b, o)?,
        Bgeu(a, b, o) => branch(op::BGEU, a, b, o)?,
        Jal(d, o) => {
            let field = word_offset(o, 19)?;
            (u32::from(op::JAL) << 24) | (u32::from(d.index()) << 19) | field
        }
        Jalr(d, a, imm) => i_signed(op::JALR, d, a, imm)?,
        LpSetup {
            idx,
            count,
            body_end,
        } => {
            let field = word_offset(body_end, 14)?;
            let idx = fit_unsigned(u32::from(idx), 1)?;
            (u32::from(op::LP_SETUP) << 24) | (idx << 23) | (u32::from(count.index()) << 14) | field
        }
        Csrr(d, csr) => {
            (u32::from(op::CSRR) << 24) | (u32::from(d.index()) << 19) | u32::from(csr.id())
        }
        Nop => u32::from(op::NOP) << 24,
        Halt => u32::from(op::HALT) << 24,
        Wfe => u32::from(op::WFE) << 24,
        Sev(id) => (u32::from(op::SEV) << 24) | u32::from(id),
        Barrier => u32::from(op::BARRIER) << 24,
    })
}

fn f_rd(w: u32) -> Reg {
    Reg::new(((w >> 19) & 0x1F) as u8)
}
fn f_ra(w: u32) -> Reg {
    Reg::new(((w >> 14) & 0x1F) as u8)
}
fn f_rb(w: u32) -> Reg {
    Reg::new(((w >> 9) & 0x1F) as u8)
}
fn f_imm14_s(w: u32) -> i16 {
    (((w & 0x3FFF) << 2) as i16) >> 2
}
fn f_imm14_u(w: u32) -> u16 {
    (w & 0x3FFF) as u16
}
fn f_off14(w: u32) -> i32 {
    i32::from(f_imm14_s(w)) * 4
}
fn f_off19(w: u32) -> i32 {
    ((((w & 0x7FFFF) << 13) as i32) >> 13) * 4
}
fn f_sh(w: u32) -> u8 {
    ((w >> 9) & 0x1F) as u8
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] if the opcode or a sub-field is invalid.
pub fn decode(word: u32) -> Result<Insn, DecodeError> {
    use Insn::*;
    let opcode = (word >> 24) as u8;
    let err = || DecodeError { word };
    Ok(match opcode {
        op::ADD => Add(f_rd(word), f_ra(word), f_rb(word)),
        op::SUB => Sub(f_rd(word), f_ra(word), f_rb(word)),
        op::AND => And(f_rd(word), f_ra(word), f_rb(word)),
        op::OR => Or(f_rd(word), f_ra(word), f_rb(word)),
        op::XOR => Xor(f_rd(word), f_ra(word), f_rb(word)),
        op::SLL => Sll(f_rd(word), f_ra(word), f_rb(word)),
        op::SRL => Srl(f_rd(word), f_ra(word), f_rb(word)),
        op::SRA => Sra(f_rd(word), f_ra(word), f_rb(word)),
        op::SLT => Slt(f_rd(word), f_ra(word), f_rb(word)),
        op::SLTU => Sltu(f_rd(word), f_ra(word), f_rb(word)),
        op::MIN => Min(f_rd(word), f_ra(word), f_rb(word)),
        op::MAX => Max(f_rd(word), f_ra(word), f_rb(word)),
        op::MUL => Mul(f_rd(word), f_ra(word), f_rb(word)),
        op::DIV => Div(f_rd(word), f_ra(word), f_rb(word)),
        op::DIVU => Divu(f_rd(word), f_ra(word), f_rb(word)),
        op::MAC => Mac(f_rd(word), f_ra(word), f_rb(word)),
        op::MULL | op::MLAL => {
            let rd_hi = f_rd(word);
            let ra = f_ra(word);
            let rb = f_rb(word);
            let rd_lo = Reg::new(((word >> 4) & 0x1F) as u8);
            let signed = word & 1 != 0;
            if opcode == op::MULL {
                Mull {
                    rd_hi,
                    rd_lo,
                    ra,
                    rb,
                    signed,
                }
            } else {
                Mlal {
                    rd_hi,
                    rd_lo,
                    ra,
                    rb,
                    signed,
                }
            }
        }
        op::SDOTV4 => SdotV4(f_rd(word), f_ra(word), f_rb(word)),
        op::SDOTV2 => SdotV2(f_rd(word), f_ra(word), f_rb(word)),
        op::ADDV4 => AddV4(f_rd(word), f_ra(word), f_rb(word)),
        op::ADDV2 => AddV2(f_rd(word), f_ra(word), f_rb(word)),
        op::SUBV4 => SubV4(f_rd(word), f_ra(word), f_rb(word)),
        op::SUBV2 => SubV2(f_rd(word), f_ra(word), f_rb(word)),
        op::ADDI => Addi(f_rd(word), f_ra(word), f_imm14_s(word)),
        op::ANDI => Andi(f_rd(word), f_ra(word), f_imm14_u(word)),
        op::ORI => Ori(f_rd(word), f_ra(word), f_imm14_u(word)),
        op::XORI => Xori(f_rd(word), f_ra(word), f_imm14_u(word)),
        op::SLLI => Slli(f_rd(word), f_ra(word), f_sh(word)),
        op::SRLI => Srli(f_rd(word), f_ra(word), f_sh(word)),
        op::SRAI => Srai(f_rd(word), f_ra(word), f_sh(word)),
        op::LUI => Lui(f_rd(word), word & 0x3FFFF),
        op::LB | op::LBU | op::LH | op::LHU | op::LW => {
            let (size, signed) = match opcode {
                op::LB => (MemSize::Byte, true),
                op::LBU => (MemSize::Byte, false),
                op::LH => (MemSize::Half, true),
                op::LHU => (MemSize::Half, false),
                _ => (MemSize::Word, true),
            };
            Load {
                rd: f_rd(word),
                base: f_ra(word),
                offset: f_imm14_s(word),
                size,
                signed,
            }
        }
        op::LB_PI | op::LBU_PI | op::LH_PI | op::LHU_PI | op::LW_PI => {
            let (size, signed) = match opcode {
                op::LB_PI => (MemSize::Byte, true),
                op::LBU_PI => (MemSize::Byte, false),
                op::LH_PI => (MemSize::Half, true),
                op::LHU_PI => (MemSize::Half, false),
                _ => (MemSize::Word, true),
            };
            LoadPi {
                rd: f_rd(word),
                base: f_ra(word),
                inc: f_imm14_s(word),
                size,
                signed,
            }
        }
        op::SB | op::SH | op::SW => {
            let size = match opcode {
                op::SB => MemSize::Byte,
                op::SH => MemSize::Half,
                _ => MemSize::Word,
            };
            Store {
                rs: f_rd(word),
                base: f_ra(word),
                offset: f_imm14_s(word),
                size,
            }
        }
        op::SB_PI | op::SH_PI | op::SW_PI => {
            let size = match opcode {
                op::SB_PI => MemSize::Byte,
                op::SH_PI => MemSize::Half,
                _ => MemSize::Word,
            };
            StorePi {
                rs: f_rd(word),
                base: f_ra(word),
                inc: f_imm14_s(word),
                size,
            }
        }
        op::TAS => Tas(f_rd(word), f_ra(word)),
        op::BEQ => Beq(f_rd(word), f_ra(word), f_off14(word)),
        op::BNE => Bne(f_rd(word), f_ra(word), f_off14(word)),
        op::BLT => Blt(f_rd(word), f_ra(word), f_off14(word)),
        op::BGE => Bge(f_rd(word), f_ra(word), f_off14(word)),
        op::BLTU => Bltu(f_rd(word), f_ra(word), f_off14(word)),
        op::BGEU => Bgeu(f_rd(word), f_ra(word), f_off14(word)),
        op::JAL => Jal(f_rd(word), f_off19(word)),
        op::JALR => Jalr(f_rd(word), f_ra(word), f_imm14_s(word)),
        op::LP_SETUP => LpSetup {
            idx: ((word >> 23) & 1) as u8,
            count: f_ra(word),
            body_end: f_off14(word),
        },
        op::CSRR => Csrr(
            f_rd(word),
            Csr::from_id((word & 0xFFFF) as u16).ok_or_else(err)?,
        ),
        op::NOP => Nop,
        op::HALT => Halt,
        op::WFE => Wfe,
        op::SEV => Sev((word & 0xFF) as u8),
        op::BARRIER => Barrier,
        _ => return Err(err()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::named::*;

    fn roundtrip(insn: Insn) {
        let word = encode(&insn).expect("encodable");
        let back = decode(word).expect("decodable");
        assert_eq!(insn, back, "roundtrip failed for word {word:#010x}");
    }

    #[test]
    fn roundtrip_representative_sample() {
        let sample = [
            Insn::Add(R1, R2, R3),
            Insn::Sub(R31, R30, R29),
            Insn::Mul(R4, R5, R6),
            Insn::Mac(R7, R8, R9),
            Insn::Mull {
                rd_hi: R10,
                rd_lo: R11,
                ra: R12,
                rb: R13,
                signed: true,
            },
            Insn::Mlal {
                rd_hi: R14,
                rd_lo: R15,
                ra: R16,
                rb: R17,
                signed: false,
            },
            Insn::SdotV4(R1, R2, R3),
            Insn::SdotV2(R1, R2, R3),
            Insn::Addi(R1, R2, -8191),
            Insn::Addi(R1, R2, 8191),
            Insn::Andi(R1, R2, 0x3FFF),
            Insn::Slli(R1, R2, 31),
            Insn::Srai(R1, R2, 13),
            Insn::Lui(R5, 0x3FFFF),
            Insn::Load {
                rd: R1,
                base: R2,
                offset: -4,
                size: MemSize::Half,
                signed: false,
            },
            Insn::LoadPi {
                rd: R1,
                base: R2,
                inc: 2,
                size: MemSize::Byte,
                signed: true,
            },
            Insn::Store {
                rs: R1,
                base: R2,
                offset: 100,
                size: MemSize::Word,
            },
            Insn::StorePi {
                rs: R1,
                base: R2,
                inc: -4,
                size: MemSize::Half,
            },
            Insn::Tas(R3, R4),
            Insn::Beq(R1, R2, -32),
            Insn::Bgeu(R1, R2, 32764),
            Insn::Jal(R31, -1048576),
            Insn::Jalr(R0, R31, 0),
            Insn::LpSetup {
                idx: 1,
                count: R5,
                body_end: 64,
            },
            Insn::Csrr(R1, Csr::CoreId),
            Insn::Nop,
            Insn::Halt,
            Insn::Wfe,
            Insn::Sev(33),
            Insn::Barrier,
        ];
        for insn in sample {
            roundtrip(insn);
        }
    }

    #[test]
    fn imm_out_of_range_is_rejected() {
        assert!(matches!(
            encode(&Insn::Addi(R1, R2, 8192)),
            Err(EncodeError::ImmOutOfRange { .. })
        ));
        assert!(matches!(
            encode(&Insn::Lui(R1, 0x40000)),
            Err(EncodeError::ImmOutOfRange { .. })
        ));
    }

    #[test]
    fn misaligned_offsets_are_rejected() {
        assert!(matches!(
            encode(&Insn::Beq(R1, R2, 6)),
            Err(EncodeError::MisalignedOffset { offset: 6 })
        ));
        assert!(matches!(
            encode(&Insn::Jal(R0, 2)),
            Err(EncodeError::MisalignedOffset { .. })
        ));
    }

    #[test]
    fn branch_offset_extremes() {
        roundtrip(Insn::Beq(R0, R0, -32768));
        roundtrip(Insn::Beq(R0, R0, 32764));
        assert!(encode(&Insn::Beq(R0, R0, 32768)).is_err());
        assert!(encode(&Insn::Beq(R0, R0, -32772)).is_err());
    }

    #[test]
    fn invalid_opcode_fails_decode() {
        assert!(decode(0xFF00_0000).is_err());
        assert!(decode(0x0000_0000).is_err()); // opcode 0 reserved
    }

    #[test]
    fn invalid_csr_fails_decode() {
        // CSRR with csr id 0xFFFF.
        let word = (u32::from(0x60u8) << 24) | 0xFFFF;
        assert!(decode(word).is_err());
    }
}
