//! Microarchitecture models: ISA feature gating and instruction timing.
//!
//! A [`CoreModel`] bundles the [`Features`] a core implements with the
//! [`Timing`] of its pipeline. The presets reproduce the four configurations
//! the DATE'16 paper compares:
//!
//! * [`CoreModel::or10n`] — the PULP cluster core: OpenRISC with
//!   register-register MAC, sub-word SIMD, hardware loops and unaligned
//!   memory access, **no** 32×32→64 multiplier.
//! * [`CoreModel::cortex_m4`] — ARMv7E-M: single-cycle MAC and long
//!   multiply-accumulate (`SMLAL`), hardware divide, post-indexed
//!   addressing; no PULP extensions.
//! * [`CoreModel::cortex_m3`] — ARMv7-M: multi-cycle MAC and long multiply.
//! * [`CoreModel::risc_baseline`] — the paper's footnote-1 reference
//!   ("essentially equal to the OpenRISC 1000 ISA… comparable to the
//!   original MIPS"): no extensions at all; its retired-instruction count
//!   defines a benchmark's **RISC ops**.

use std::fmt;

/// ISA extensions a core may implement.
///
/// Executing an instruction from a missing extension raises
/// [`ExecError::UnsupportedInsn`](crate::exec::ExecError::UnsupportedInsn) —
/// code generators must consult the feature set, exactly as a compiler
/// consults `-m` flags.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Features {
    /// Register-register multiply-accumulate ([`Insn::Mac`](crate::Insn::Mac)).
    pub mac: bool,
    /// Sub-word SIMD dot products and packed adds (OR10N "vectorized
    /// instructions for short and char data types").
    pub simd_dot: bool,
    /// Two nested zero-overhead hardware loops.
    pub hw_loops: bool,
    /// Post-incrementing load/store addressing.
    pub post_increment: bool,
    /// 32×32→64 multiply and multiply-accumulate (ARM `UMULL`/`SMLAL`).
    pub mul64: bool,
    /// Hardware support for unaligned load/store (with a one-cycle penalty);
    /// without it, unaligned accesses fault.
    pub unaligned: bool,
    /// Hardware integer divide.
    pub div: bool,
}

impl Features {
    /// No extensions: the RISC-ops reference configuration.
    #[must_use]
    pub fn baseline() -> Self {
        Features::default()
    }
}

/// Instruction latencies and pipeline penalties, in cycles.
///
/// All simple ALU operations and TCDM hits take one cycle (in-order,
/// single-issue pipeline); the fields here are the cycle counts of the
/// non-unit-latency cases.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Timing {
    /// 32×32→32 multiply.
    pub mul: u32,
    /// Register-register MAC ([`Insn::Mac`](crate::Insn::Mac)).
    pub mac: u32,
    /// 32×32→64 multiply (`mull`).
    pub mull: u32,
    /// 64-bit multiply-accumulate (`mlal`).
    pub mlal: u32,
    /// Integer divide.
    pub div: u32,
    /// Extra cycles on a taken branch (pipeline refill).
    pub taken_branch: u32,
    /// Extra cycles for an unaligned access that crosses a word boundary.
    pub unaligned_penalty: u32,
    /// Cycles from an event arriving to the core resuming after
    /// [`Wfe`](crate::Insn::Wfe) (the PULP HW synchronizer wakes cores "in
    /// just a few cycles").
    pub wakeup: u32,
}

impl Timing {
    /// Single-cycle-everything timing used by the RISC baseline.
    #[must_use]
    pub fn unit() -> Self {
        Timing {
            mul: 1,
            mac: 1,
            mull: 1,
            mlal: 1,
            div: 32,
            taken_branch: 2,
            unaligned_penalty: 1,
            wakeup: 2,
        }
    }
}

impl Default for Timing {
    fn default() -> Self {
        Timing::unit()
    }
}

/// A complete core microarchitecture description.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CoreModel {
    /// Human-readable name ("or10n", "cortex-m4", …).
    pub name: &'static str,
    /// Implemented ISA extensions.
    pub features: Features,
    /// Instruction timing.
    pub timing: Timing,
}

impl CoreModel {
    /// The PULP cluster core: OR10N (extended OpenRISC).
    ///
    /// Implements MAC, sub-word SIMD, hardware loops and unaligned access
    /// (the four enhancements paper §III-B lists) — but no post-indexed
    /// addressing, no 32×32→64 multiplier and no hardware divide
    /// (division and wide accumulation are emulated in software, which is
    /// why the paper's `hog` benchmark shows an architectural *slowdown*).
    #[must_use]
    pub fn or10n() -> Self {
        CoreModel {
            name: "or10n",
            features: Features {
                mac: true,
                simd_dot: true,
                hw_loops: true,
                post_increment: false,
                mul64: false,
                unaligned: true,
                div: false,
            },
            timing: Timing {
                mul: 1,
                mac: 1,
                mull: 1, // unreachable: feature absent
                mlal: 1, // unreachable: feature absent
                div: 32, // unreachable: feature absent
                taken_branch: 2,
                unaligned_penalty: 1,
                wakeup: 2,
            },
        }
    }

    /// ARM Cortex-M4-class host core (ARMv7E-M).
    ///
    /// Single-cycle `MLA`/`SMLAL`, hardware divide, and the ARM
    /// pre/post-indexed addressing modes (modelled as `post_increment`).
    /// No hardware loops and no sub-word dot product (the paper's
    /// benchmarks are portable C, so the M4 DSP SIMD intrinsics are
    /// unused — only its faster multiplier timing differentiates it from
    /// the M3).
    #[must_use]
    pub fn cortex_m4() -> Self {
        CoreModel {
            name: "cortex-m4",
            features: Features {
                mac: true,
                simd_dot: false,
                hw_loops: false,
                post_increment: true,
                mul64: true,
                unaligned: true,
                div: true,
            },
            timing: Timing {
                mul: 1,
                mac: 1,
                mull: 1,
                mlal: 1,
                div: 6,
                taken_branch: 3,
                unaligned_penalty: 1,
                wakeup: 3,
            },
        }
    }

    /// ARM Cortex-M3-class host core (ARMv7-M).
    ///
    /// The paper estimates M3 cycle counts by deactivating the
    /// M4-specific flags; microarchitecturally, `MLA` takes 2 cycles and
    /// `UMULL`/`SMLAL` take 3–7 (we use 4/5 typical).
    #[must_use]
    pub fn cortex_m3() -> Self {
        CoreModel {
            name: "cortex-m3",
            features: Features {
                mac: true,
                simd_dot: false,
                hw_loops: false,
                post_increment: true,
                mul64: true,
                unaligned: true,
                div: true,
            },
            timing: Timing {
                mul: 1,
                mac: 2,
                mull: 4,
                mlal: 5,
                div: 8,
                taken_branch: 3,
                unaligned_penalty: 1,
                wakeup: 3,
            },
        }
    }

    /// The RISC-ops reference: a plain 5-stage in-order core with no
    /// extensions (paper §IV footnote 1). Instruction counts retired by
    /// this configuration define a benchmark's "RISC ops".
    #[must_use]
    pub fn risc_baseline() -> Self {
        CoreModel {
            name: "risc-baseline",
            features: Features::baseline(),
            timing: Timing::unit(),
        }
    }
}

impl Default for CoreModel {
    fn default() -> Self {
        CoreModel::risc_baseline()
    }
}

impl fmt::Display for CoreModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_feature_matrix() {
        let or10n = CoreModel::or10n();
        assert!(or10n.features.hw_loops && or10n.features.simd_dot && or10n.features.mac);
        assert!(
            !or10n.features.mul64,
            "OR10N must lack the long multiplier (hog slowdown)"
        );

        let m4 = CoreModel::cortex_m4();
        assert!(m4.features.mul64 && m4.features.mac);
        assert!(!m4.features.hw_loops && !m4.features.simd_dot);
        assert!(
            m4.features.post_increment,
            "ARM has post-indexed addressing"
        );

        let m3 = CoreModel::cortex_m3();
        assert!(
            m3.timing.mac > m4.timing.mac,
            "M3 MAC must be slower than M4"
        );
        assert!(m3.timing.mull > m4.timing.mull);

        let base = CoreModel::risc_baseline();
        assert_eq!(base.features, Features::baseline());
    }

    #[test]
    fn display_names() {
        assert_eq!(CoreModel::or10n().to_string(), "or10n");
        assert_eq!(CoreModel::cortex_m4().to_string(), "cortex-m4");
    }
}
