//! Textual UIR assembly: a parser for the syntax [`Insn`]'s `Display`
//! implementation emits, plus labels and comments for whole programs.
//!
//! The grammar (one instruction per line):
//!
//! ```text
//! # comment                     ; also a comment
//! loop:                         # label definition
//!     addi r1, r0, 10
//!     lw   r2, 8(r3)            # offset addressing
//!     lb.pi r2, (r3)+1          # post-increment
//!     sdot.v4 r4, r2, r5
//!     smull r6:r7, r8, r9       # 64-bit multiply, hi:lo
//!     lp.setup l0, r1, +16      # HW loop (byte offset to last body insn)
//!     bne  r1, r0, loop         # label or numeric offset (+8 / -8)
//!     csrr r10, CoreId
//!     halt
//! ```
//!
//! Every instruction round-trips: `parse_insn(&insn.to_string())` returns
//! the identical [`Insn`] (verified by property tests). [`parse_program`]
//! additionally resolves labels and tolerates the `0x0000:` address
//! prefixes produced by [`Program::listing`], so a listing re-assembles
//! into the same program.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::asm::{Asm, Program};
use crate::insn::{Csr, Insn, MemSize};
use crate::reg::Reg;

/// Error produced while parsing assembly text.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based source line (0 for single-instruction parsing).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error: {}", self.message)
        } else {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseError {}

fn err(message: impl Into<String>) -> ParseError {
    ParseError {
        line: 0,
        message: message.into(),
    }
}

fn strip_comment(line: &str) -> &str {
    let end = line.find(['#', ';']).unwrap_or(line.len());
    line[..end].trim()
}

fn parse_reg(tok: &str) -> Result<Reg, ParseError> {
    let rest = tok
        .strip_prefix('r')
        .ok_or_else(|| err(format!("expected register, found `{tok}`")))?;
    let idx: u8 = rest
        .parse()
        .map_err(|_| err(format!("bad register `{tok}`")))?;
    Reg::try_new(idx).ok_or_else(|| err(format!("register `{tok}` out of range")))
}

fn parse_int(tok: &str) -> Result<i64, ParseError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok.strip_prefix('+').unwrap_or(tok)),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| err(format!("bad integer `{tok}`")))?;
    Ok(if neg { -v } else { v })
}

fn to_i16(v: i64) -> Result<i16, ParseError> {
    i16::try_from(v).map_err(|_| err(format!("immediate {v} does not fit 16 bits")))
}

fn to_u16(v: i64) -> Result<u16, ParseError> {
    u16::try_from(v).map_err(|_| err(format!("immediate {v} is not a valid u16")))
}

fn to_i32(v: i64) -> Result<i32, ParseError> {
    i32::try_from(v).map_err(|_| err(format!("offset {v} does not fit 32 bits")))
}

/// Splits an operand list on commas, trimming whitespace.
fn operands(rest: &str) -> Vec<&str> {
    rest.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

/// Parses `offset(base)` memory operands.
fn parse_mem_operand(tok: &str) -> Result<(Reg, i16), ParseError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(format!("expected `off(reg)`, found `{tok}`")))?;
    let close = tok
        .find(')')
        .ok_or_else(|| err(format!("missing `)` in operand `{tok}`")))?;
    let off_txt = tok[..open].trim();
    let offset = if off_txt.is_empty() {
        0
    } else {
        to_i16(parse_int(off_txt)?)?
    };
    let base = parse_reg(tok[open + 1..close].trim())?;
    Ok((base, offset))
}

/// Parses `(base)+inc` post-increment operands.
fn parse_pi_operand(tok: &str) -> Result<(Reg, i16), ParseError> {
    let inner = tok
        .strip_prefix('(')
        .ok_or_else(|| err(format!("expected `(reg)+inc`, found `{tok}`")))?;
    let close = inner
        .find(')')
        .ok_or_else(|| err(format!("missing `)` in `{tok}`")))?;
    let base = parse_reg(inner[..close].trim())?;
    let inc_txt = inner[close + 1..].trim();
    let inc = to_i16(parse_int(inc_txt)?)?;
    Ok((base, inc))
}

/// Parses `hi:lo` register pairs.
fn parse_pair(tok: &str) -> Result<(Reg, Reg), ParseError> {
    let (hi, lo) = tok
        .split_once(':')
        .ok_or_else(|| err(format!("expected `hi:lo`, found `{tok}`")))?;
    Ok((parse_reg(hi.trim())?, parse_reg(lo.trim())?))
}

/// A branch/jump/loop target: numeric offset or symbolic label.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Target {
    Offset(i32),
    Label(String),
}

fn parse_target(tok: &str) -> Result<Target, ParseError> {
    if tok.starts_with(['+', '-']) || tok.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        Ok(Target::Offset(to_i32(parse_int(tok)?)?))
    } else {
        Ok(Target::Label(tok.to_owned()))
    }
}

fn parse_csr(tok: &str) -> Result<Csr, ParseError> {
    match tok {
        "CoreId" => Ok(Csr::CoreId),
        "NumCores" => Ok(Csr::NumCores),
        "CycleLo" => Ok(Csr::CycleLo),
        "InstRetLo" => Ok(Csr::InstRetLo),
        other => Err(err(format!("unknown CSR `{other}`"))),
    }
}

/// An instruction whose control-flow target may still be symbolic.
#[derive(Clone, Debug)]
enum Parsed {
    Ready(Insn),
    Branch {
        mnemonic: String,
        a: Reg,
        b: Reg,
        target: Target,
    },
    Jal {
        rd: Reg,
        target: Target,
    },
    LpSetup {
        idx: u8,
        count: Reg,
        target: Target,
    },
}

#[allow(clippy::too_many_lines)]
fn parse_line(text: &str) -> Result<Parsed, ParseError> {
    let text = text.trim();
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let ops = operands(rest);
    let nops = ops.len();
    let want = |n: usize| -> Result<(), ParseError> {
        if nops == n {
            Ok(())
        } else {
            Err(err(format!(
                "`{mnemonic}` expects {n} operands, found {nops}"
            )))
        }
    };
    let rrr = |f: fn(Reg, Reg, Reg) -> Insn| -> Result<Parsed, ParseError> {
        want(3)?;
        Ok(Parsed::Ready(f(
            parse_reg(ops[0])?,
            parse_reg(ops[1])?,
            parse_reg(ops[2])?,
        )))
    };

    use Insn::*;
    match mnemonic {
        "add" => rrr(Add),
        "sub" => rrr(Sub),
        "and" => rrr(And),
        "or" => rrr(Or),
        "xor" => rrr(Xor),
        "sll" => rrr(Sll),
        "srl" => rrr(Srl),
        "sra" => rrr(Sra),
        "slt" => rrr(Slt),
        "sltu" => rrr(Sltu),
        "min" => rrr(Min),
        "max" => rrr(Max),
        "mul" => rrr(Mul),
        "div" => rrr(Div),
        "divu" => rrr(Divu),
        "mac" => rrr(Mac),
        "sdot.v4" => rrr(SdotV4),
        "sdot.v2" => rrr(SdotV2),
        "add.v4" => rrr(AddV4),
        "add.v2" => rrr(AddV2),
        "sub.v4" => rrr(SubV4),
        "sub.v2" => rrr(SubV2),
        "smull" | "umull" | "smlal" | "umlal" => {
            want(3)?;
            let (rd_hi, rd_lo) = parse_pair(ops[0])?;
            let ra = parse_reg(ops[1])?;
            let rb = parse_reg(ops[2])?;
            let signed = mnemonic.starts_with('s');
            Ok(Parsed::Ready(if mnemonic.ends_with("mull") {
                Mull {
                    rd_hi,
                    rd_lo,
                    ra,
                    rb,
                    signed,
                }
            } else {
                Mlal {
                    rd_hi,
                    rd_lo,
                    ra,
                    rb,
                    signed,
                }
            }))
        }
        "addi" => {
            want(3)?;
            Ok(Parsed::Ready(Addi(
                parse_reg(ops[0])?,
                parse_reg(ops[1])?,
                to_i16(parse_int(ops[2])?)?,
            )))
        }
        "andi" | "ori" | "xori" => {
            want(3)?;
            let (d, a) = (parse_reg(ops[0])?, parse_reg(ops[1])?);
            let imm = to_u16(parse_int(ops[2])?)?;
            Ok(Parsed::Ready(match mnemonic {
                "andi" => Andi(d, a, imm),
                "ori" => Ori(d, a, imm),
                _ => Xori(d, a, imm),
            }))
        }
        "slli" | "srli" | "srai" => {
            want(3)?;
            let (d, a) = (parse_reg(ops[0])?, parse_reg(ops[1])?);
            let sh = u8::try_from(parse_int(ops[2])?)
                .ok()
                .filter(|s| *s < 32)
                .ok_or_else(|| err("shift amount must be 0..32"))?;
            Ok(Parsed::Ready(match mnemonic {
                "slli" => Slli(d, a, sh),
                "srli" => Srli(d, a, sh),
                _ => Srai(d, a, sh),
            }))
        }
        "lui" => {
            want(2)?;
            let d = parse_reg(ops[0])?;
            let imm = u32::try_from(parse_int(ops[1])?)
                .ok()
                .filter(|v| *v < (1 << 18))
                .ok_or_else(|| err("lui immediate must fit 18 bits"))?;
            Ok(Parsed::Ready(Lui(d, imm)))
        }
        "lw" | "lh" | "lhu" | "lb" | "lbu" => {
            want(2)?;
            let rd = parse_reg(ops[0])?;
            let (base, offset) = parse_mem_operand(ops[1])?;
            let (size, signed) = match mnemonic {
                "lw" => (MemSize::Word, true),
                "lh" => (MemSize::Half, true),
                "lhu" => (MemSize::Half, false),
                "lb" => (MemSize::Byte, true),
                _ => (MemSize::Byte, false),
            };
            Ok(Parsed::Ready(Load {
                rd,
                base,
                offset,
                size,
                signed,
            }))
        }
        "lw.pi" | "lh.pi" | "lhu.pi" | "lb.pi" | "lbu.pi" => {
            want(2)?;
            let rd = parse_reg(ops[0])?;
            let (base, inc) = parse_pi_operand(ops[1])?;
            let (size, signed) = match mnemonic {
                "lw.pi" => (MemSize::Word, true),
                "lh.pi" => (MemSize::Half, true),
                "lhu.pi" => (MemSize::Half, false),
                "lb.pi" => (MemSize::Byte, true),
                _ => (MemSize::Byte, false),
            };
            Ok(Parsed::Ready(LoadPi {
                rd,
                base,
                inc,
                size,
                signed,
            }))
        }
        "sw" | "sh" | "sb" => {
            want(2)?;
            let rs = parse_reg(ops[0])?;
            let (base, offset) = parse_mem_operand(ops[1])?;
            let size = match mnemonic {
                "sw" => MemSize::Word,
                "sh" => MemSize::Half,
                _ => MemSize::Byte,
            };
            Ok(Parsed::Ready(Store {
                rs,
                base,
                offset,
                size,
            }))
        }
        "sw.pi" | "sh.pi" | "sb.pi" => {
            want(2)?;
            let rs = parse_reg(ops[0])?;
            let (base, inc) = parse_pi_operand(ops[1])?;
            let size = match mnemonic {
                "sw.pi" => MemSize::Word,
                "sh.pi" => MemSize::Half,
                _ => MemSize::Byte,
            };
            Ok(Parsed::Ready(StorePi {
                rs,
                base,
                inc,
                size,
            }))
        }
        "tas" => {
            want(2)?;
            let rd = parse_reg(ops[0])?;
            let (base, offset) = parse_mem_operand(ops[1])?;
            if offset != 0 {
                return Err(err("tas takes a plain (reg) operand"));
            }
            Ok(Parsed::Ready(Tas(rd, base)))
        }
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            want(3)?;
            Ok(Parsed::Branch {
                mnemonic: mnemonic.to_owned(),
                a: parse_reg(ops[0])?,
                b: parse_reg(ops[1])?,
                target: parse_target(ops[2])?,
            })
        }
        "jal" => {
            want(2)?;
            Ok(Parsed::Jal {
                rd: parse_reg(ops[0])?,
                target: parse_target(ops[1])?,
            })
        }
        "jalr" => {
            want(3)?;
            Ok(Parsed::Ready(Jalr(
                parse_reg(ops[0])?,
                parse_reg(ops[1])?,
                to_i16(parse_int(ops[2])?)?,
            )))
        }
        "lp.setup" => {
            want(3)?;
            let idx = match ops[0] {
                "l0" => 0u8,
                "l1" => 1,
                other => return Err(err(format!("loop unit must be l0/l1, found `{other}`"))),
            };
            Ok(Parsed::LpSetup {
                idx,
                count: parse_reg(ops[1])?,
                target: parse_target(ops[2])?,
            })
        }
        "csrr" => {
            want(2)?;
            Ok(Parsed::Ready(Csrr(parse_reg(ops[0])?, parse_csr(ops[1])?)))
        }
        "nop" => {
            want(0)?;
            Ok(Parsed::Ready(Nop))
        }
        "halt" => {
            want(0)?;
            Ok(Parsed::Ready(Halt))
        }
        "wfe" => {
            want(0)?;
            Ok(Parsed::Ready(Wfe))
        }
        "barrier" => {
            want(0)?;
            Ok(Parsed::Ready(Barrier))
        }
        "sev" => {
            want(1)?;
            let id = u8::try_from(parse_int(ops[0])?).map_err(|_| err("event id must be 0-255"))?;
            Ok(Parsed::Ready(Sev(id)))
        }
        other => Err(err(format!("unknown mnemonic `{other}`"))),
    }
}

fn make_branch(mnemonic: &str, a: Reg, b: Reg, off: i32) -> Insn {
    match mnemonic {
        "beq" => Insn::Beq(a, b, off),
        "bne" => Insn::Bne(a, b, off),
        "blt" => Insn::Blt(a, b, off),
        "bge" => Insn::Bge(a, b, off),
        "bltu" => Insn::Bltu(a, b, off),
        _ => Insn::Bgeu(a, b, off),
    }
}

/// Parses a single instruction (no labels).
///
/// # Errors
///
/// Returns [`ParseError`] on unknown mnemonics, malformed operands, or a
/// symbolic target (use [`parse_program`] for labels).
pub fn parse_insn(text: &str) -> Result<Insn, ParseError> {
    let text = strip_comment(text);
    match parse_line(text)? {
        Parsed::Ready(i) => Ok(i),
        Parsed::Branch {
            mnemonic,
            a,
            b,
            target: Target::Offset(o),
        } => Ok(make_branch(&mnemonic, a, b, o)),
        Parsed::Jal {
            rd,
            target: Target::Offset(o),
        } => Ok(Insn::Jal(rd, o)),
        Parsed::LpSetup {
            idx,
            count,
            target: Target::Offset(o),
        } => Ok(Insn::LpSetup {
            idx,
            count,
            body_end: o,
        }),
        _ => Err(err("symbolic labels need parse_program")),
    }
}

/// Strips an optional `0xNNNN:` address prefix (as emitted by
/// [`Program::listing`]).
fn strip_address(line: &str) -> &str {
    if let Some((head, rest)) = line.split_once(':') {
        let h = head.trim();
        if h.starts_with("0x") && h[2..].chars().all(|c| c.is_ascii_hexdigit()) {
            return rest.trim();
        }
    }
    line
}

/// Parses a whole program: instructions, `label:` definitions, comments,
/// and the address-prefixed lines of [`Program::listing`].
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line number on any syntax
/// error or unresolved label; assembly errors (offset ranges, hardware-
/// loop constraints) surface through the embedded [`Asm::finish`].
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    // First pass: instruction index of every label.
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut index = 0usize;
    for (lineno, raw) in source.lines().enumerate() {
        let mut line = strip_address(strip_comment(raw));
        while let Some(colon) = line.find(':') {
            let head = line[..colon].trim();
            if head.is_empty()
                || !head
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
                || head.starts_with("0x")
            {
                break;
            }
            if labels.insert(head.to_owned(), index).is_some() {
                return Err(ParseError {
                    line: lineno + 1,
                    message: format!("label `{head}` defined twice"),
                });
            }
            line = line[colon + 1..].trim();
        }
        if !line.is_empty() {
            index += 1;
        }
    }

    // Second pass: parse and resolve.
    let mut asm = Asm::new();
    let mut index = 0usize;
    for (lineno, raw) in source.lines().enumerate() {
        let mut line = strip_address(strip_comment(raw));
        // Skip any label definitions at the head of the line.
        while let Some(colon) = line.find(':') {
            let head = line[..colon].trim();
            if labels.contains_key(head) && !head.starts_with("0x") {
                line = line[colon + 1..].trim();
            } else {
                break;
            }
        }
        if line.is_empty() {
            continue;
        }
        let at = (index * 4) as i64;
        let resolve = |target: &Target, lp: bool| -> Result<i32, ParseError> {
            match target {
                Target::Offset(o) => Ok(*o),
                Target::Label(name) => {
                    let tgt = labels.get(name).ok_or_else(|| ParseError {
                        line: lineno + 1,
                        message: format!("unknown label `{name}`"),
                    })?;
                    let mut off = (*tgt as i64) * 4 - at;
                    if lp {
                        // lp.setup labels point after the last body insn.
                        off -= 4;
                    }
                    Ok(off as i32)
                }
            }
        };
        let insn = match parse_line(line).map_err(|e| ParseError {
            line: lineno + 1,
            ..e
        })? {
            Parsed::Ready(i) => i,
            Parsed::Branch {
                mnemonic,
                a,
                b,
                target,
            } => make_branch(&mnemonic, a, b, resolve(&target, false)?),
            Parsed::Jal { rd, target } => Insn::Jal(rd, resolve(&target, false)?),
            Parsed::LpSetup { idx, count, target } => Insn::LpSetup {
                idx,
                count,
                body_end: resolve(&target, true)?,
            },
        };
        asm.insn(insn);
        index += 1;
    }

    asm.finish().map_err(|e| ParseError {
        line: 0,
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::named::*;

    #[test]
    fn single_instructions_parse() {
        assert_eq!(parse_insn("add r1, r2, r3").unwrap(), Insn::Add(R1, R2, R3));
        assert_eq!(
            parse_insn("addi r1, r0, -42").unwrap(),
            Insn::Addi(R1, R0, -42)
        );
        assert_eq!(
            parse_insn("andi r1, r2, 0x3fff").unwrap(),
            Insn::Andi(R1, R2, 0x3FFF)
        );
        assert_eq!(
            parse_insn("lw r2, 8(r3)").unwrap(),
            Insn::Load {
                rd: R2,
                base: R3,
                offset: 8,
                size: MemSize::Word,
                signed: true
            }
        );
        assert_eq!(
            parse_insn("lbu r2, -4(r3)").unwrap(),
            Insn::Load {
                rd: R2,
                base: R3,
                offset: -4,
                size: MemSize::Byte,
                signed: false
            }
        );
        assert_eq!(
            parse_insn("lb.pi r2, (r3)+1").unwrap(),
            Insn::LoadPi {
                rd: R2,
                base: R3,
                inc: 1,
                size: MemSize::Byte,
                signed: true
            }
        );
        assert_eq!(
            parse_insn("smull r6:r7, r8, r9").unwrap(),
            Insn::Mull {
                rd_hi: R6,
                rd_lo: R7,
                ra: R8,
                rb: R9,
                signed: true
            }
        );
        assert_eq!(parse_insn("beq r1, r0, +8").unwrap(), Insn::Beq(R1, R0, 8));
        assert_eq!(
            parse_insn("lp.setup l0, r5, +16").unwrap(),
            Insn::LpSetup {
                idx: 0,
                count: R5,
                body_end: 16
            }
        );
        assert_eq!(
            parse_insn("csrr r4, NumCores").unwrap(),
            Insn::Csrr(R4, Csr::NumCores)
        );
        assert_eq!(parse_insn("sev 33").unwrap(), Insn::Sev(33));
        assert_eq!(parse_insn("nop # with comment").unwrap(), Insn::Nop);
    }

    #[test]
    fn errors_are_informative() {
        assert!(parse_insn("frobnicate r1")
            .unwrap_err()
            .message
            .contains("unknown mnemonic"));
        assert!(parse_insn("add r1, r2")
            .unwrap_err()
            .message
            .contains("expects 3"));
        assert!(parse_insn("add r1, r2, r99")
            .unwrap_err()
            .message
            .contains("out of range"));
        assert!(parse_insn("lw r1, r2")
            .unwrap_err()
            .message
            .contains("off(reg)"));
        assert!(parse_insn("csrr r1, Bogus")
            .unwrap_err()
            .message
            .contains("unknown CSR"));
    }

    #[test]
    fn program_with_labels() {
        let src = "
            # sum 1..=10
            addi r1, r0, 10
            addi r3, r0, 0
        top:
            add  r3, r3, r1
            addi r1, r1, -1
            bne  r1, r0, top
            halt
        ";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.insns().len(), 6);
        assert_eq!(prog.insns()[4], Insn::Bne(R1, R0, -8));

        // And it actually runs.
        let mut mem = crate::FlatMemory::new(0, 4096);
        mem.load_program(&prog, 0).unwrap();
        let mut core = crate::Core::new(0, crate::CoreModel::risc_baseline());
        core.reset(0);
        core.run(&mut mem, 100_000).unwrap();
        assert_eq!(core.reg(R3), 55);
    }

    #[test]
    fn hw_loop_label_points_after_body() {
        let src = "
            addi r1, r0, 4
            lp.setup l0, r1, end
            addi r2, r2, 1
            nop
        end:
            halt
        ";
        let prog = parse_program(src).unwrap();
        // Setup at index 1; body = insns 2..=3; end label at 4 → offset 8.
        assert_eq!(
            prog.insns()[1],
            Insn::LpSetup {
                idx: 0,
                count: R1,
                body_end: 8
            }
        );
    }

    #[test]
    fn forward_labels_and_unknown_labels() {
        let ok = "beq r0, r0, done\nnop\ndone: halt";
        assert_eq!(parse_program(ok).unwrap().insns()[0], Insn::Beq(R0, R0, 8));
        let bad = "beq r0, r0, nowhere\nhalt";
        let e = parse_program(bad).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = parse_program("x: nop\nx: halt").unwrap_err();
        assert!(e.message.contains("defined twice"));
    }

    #[test]
    fn listing_reassembles_identically() {
        let mut a = Asm::new();
        a.li(R1, 300000);
        let top = a.new_label();
        a.bind(top);
        a.mac(R3, R1, R1);
        a.addi(R1, R1, -1);
        a.bne(R1, R0, top);
        a.insn(Insn::SdotV4(R4, R1, R3));
        a.halt();
        let prog = a.finish().unwrap();
        let reparsed = parse_program(&prog.listing()).unwrap();
        assert_eq!(reparsed.insns(), prog.insns());
    }
}
