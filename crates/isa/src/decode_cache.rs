//! Decoded-instruction side table shared by every memory that serves
//! instruction fetches.
//!
//! Both the host's [`FlatMemory`](crate::FlatMemory) and the cluster's L2
//! (in `ulp-cluster`) keep one decoded [`Insn`] per 4-byte word next to the
//! raw bytes so the interpreter's hot loop never re-decodes. The cache must
//! be invalidated on *every* write that can touch program text (data
//! stores, DMA back-doors, program loads) — logic that used to be
//! duplicated across both memories and is centralized here.
//!
//! Slots are `Option<Insn>` rather than a sentinel variant: `None` means
//! "not decoded yet *or* not decodable", and a fetch of an undecodable word
//! must keep failing lazily at fetch time, exactly as it did before any
//! predecoding existed. (The niche optimization makes `Option<Insn>` the
//! same size as `Insn`, so this costs no memory over a dense table.)

use crate::encode::decode;
use crate::insn::Insn;

/// One decoded-instruction slot per 4-byte word of a backing memory.
///
/// # Example
///
/// ```
/// use ulp_isa::{DecodeCache, Insn};
///
/// let word = ulp_isa::encode(&Insn::Nop).unwrap();
/// let data = word.to_le_bytes();
/// let mut cache = DecodeCache::new(data.len());
/// assert_eq!(cache.fetch(0, &data), Some(Insn::Nop));
/// cache.invalidate(0, 4);
/// assert_eq!(cache.cached(0), None);
/// ```
#[derive(Clone, Debug)]
pub struct DecodeCache {
    slots: Vec<Option<Insn>>,
    generation: u64,
}

impl DecodeCache {
    /// Creates an empty cache covering `size_bytes` of backing memory.
    #[must_use]
    pub fn new(size_bytes: usize) -> Self {
        DecodeCache {
            slots: vec![None; size_bytes.div_ceil(4)],
            generation: 0,
        }
    }

    /// Monotonic counter bumped every time an *already decoded* slot is
    /// invalidated — i.e. whenever previously executed-as-code bytes may
    /// have changed. Consumers holding derived state (the micro-op block
    /// cache) compare against this to detect staleness in O(1); writes to
    /// never-decoded bytes (data, rodata) do not bump it, so data stores
    /// never evict code blocks.
    #[inline]
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The already-decoded instruction at byte offset `off`, if any.
    #[inline]
    #[must_use]
    pub fn cached(&self, off: usize) -> Option<Insn> {
        self.slots[off / 4]
    }

    /// Returns the decoded instruction at byte offset `off`, decoding (and
    /// caching) from `data` on a miss. `None` means the word does not
    /// decode — the caller reports its own fetch error, preserving the
    /// lazy-error behaviour of an uncached fetch.
    #[inline]
    pub fn fetch(&mut self, off: usize, data: &[u8]) -> Option<Insn> {
        let slot = off / 4;
        if let Some(insn) = self.slots[slot] {
            return Some(insn);
        }
        let word = u32::from_le_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]]);
        let insn = decode(word).ok()?;
        self.slots[slot] = Some(insn);
        Some(insn)
    }

    /// Invalidates every slot overlapping the byte range `[off, off + len)`
    /// — the single definition of the invalidation rule that used to be
    /// duplicated in `FlatMemory` and `L2Memory`.
    #[inline]
    pub fn invalidate(&mut self, off: usize, len: usize) {
        for w in off / 4..(off + len).div_ceil(4) {
            if self.slots[w].take().is_some() {
                self.generation += 1;
            }
        }
    }

    /// Eagerly decodes the word-aligned byte range `[off, off + len)` from
    /// `data` so steady-state fetches never pay the decode. Undecodable
    /// words (rodata, padding) are left empty: they keep failing lazily at
    /// fetch time, bit-identically to a run without predecode.
    pub fn predecode(&mut self, off: usize, len: usize, data: &[u8]) {
        let end = (off + len).min(data.len()) & !3;
        let mut o = (off + 3) & !3;
        while o + 4 <= end {
            if self.slots[o / 4].is_none() {
                let word = u32::from_le_bytes([data[o], data[o + 1], data[o + 2], data[o + 3]]);
                if let Ok(insn) = decode(word) {
                    self.slots[o / 4] = Some(insn);
                }
            }
            o += 4;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::reg::named::*;

    fn word_bytes(insns: &[Insn]) -> Vec<u8> {
        let mut v = Vec::new();
        for i in insns {
            v.extend_from_slice(&encode(i).unwrap().to_le_bytes());
        }
        v
    }

    #[test]
    fn fetch_decodes_then_hits() {
        let data = word_bytes(&[Insn::Nop, Insn::Halt]);
        let mut c = DecodeCache::new(data.len());
        assert_eq!(c.cached(4), None);
        assert_eq!(c.fetch(4, &data), Some(Insn::Halt));
        assert_eq!(c.cached(4), Some(Insn::Halt));
    }

    #[test]
    fn invalidate_clears_overlapping_slots_only() {
        let data = word_bytes(&[Insn::Nop, Insn::Nop, Insn::Nop]);
        let mut c = DecodeCache::new(data.len());
        c.predecode(0, data.len(), &data);
        // A 1-byte write at offset 5 must clear only the middle word.
        c.invalidate(5, 1);
        assert_eq!(c.cached(0), Some(Insn::Nop));
        assert_eq!(c.cached(4), None);
        assert_eq!(c.cached(8), Some(Insn::Nop));
        // A write spanning a word boundary clears both words.
        c.predecode(0, data.len(), &data);
        c.invalidate(3, 2);
        assert_eq!(c.cached(0), None);
        assert_eq!(c.cached(4), None);
    }

    #[test]
    fn generation_bumps_only_when_decoded_code_changes() {
        let data = word_bytes(&[Insn::Nop, Insn::Halt]);
        let mut c = DecodeCache::new(data.len() + 8);
        assert_eq!(c.generation(), 0);
        // Invalidating never-decoded bytes (a plain data store) is free.
        c.invalidate(8, 4);
        assert_eq!(c.generation(), 0);
        c.fetch(0, &data);
        c.invalidate(8, 4);
        assert_eq!(c.generation(), 0, "data store after decode is still free");
        // Clearing a decoded slot bumps; clearing it again does not.
        c.invalidate(0, 4);
        assert_eq!(c.generation(), 1);
        c.invalidate(0, 4);
        assert_eq!(c.generation(), 1);
    }

    #[test]
    fn predecode_skips_undecodable_words() {
        let mut data = word_bytes(&[Insn::Addi(R1, R0, 7)]);
        data.extend_from_slice(&0xFFFF_FFFFu32.to_le_bytes()); // rodata junk
        let mut c = DecodeCache::new(data.len());
        c.predecode(0, data.len(), &data);
        assert_eq!(c.cached(0), Some(Insn::Addi(R1, R0, 7)));
        assert_eq!(c.cached(4), None, "junk stays lazy");
        assert_eq!(c.fetch(4, &data), None, "and still fails at fetch time");
    }
}
