//! Pre-decoded micro-op basic blocks and the per-memory-image block cache.
//!
//! The interpreter's hot loop historically paid, per retired instruction, a
//! fetch through the [`DecodeCache`], a match over the full [`Insn`] enum,
//! feature-gate checks and operand field extraction. This module performs
//! all of that **once per basic block**: a translation pass walks the image
//! from a fetch PC to the first control-flow or system instruction and emits
//! a flat `Vec<MicroOp>` whose operands (register indices, sign-extended
//! immediates, pre-resolved timing/penalty values) are ready for a direct
//! dispatch on a dense [`UopKind`] discriminant. The executing core (see
//! `Core::exec_block` in [`exec`](crate::exec)) then retires the whole block
//! without touching the decoder.
//!
//! Equivalence with the reference `Core::step` path is preserved by
//! construction:
//!
//! * every uop keeps its originating [`Insn`], so traces, errors and the
//!   rare/cold operations (`div`, `csrr`, `lp.setup`, system ops — the
//!   [`UopKind::Generic`] escape hatch) go through the *same* code the
//!   reference engine runs;
//! * feature gating is resolved at translation time: an instruction whose
//!   extension the core lacks translates to `Generic`, whose executor
//!   raises the identical [`ExecError`](crate::exec::ExecError);
//! * blocks are validated against [`DecodeCache::generation`] on every
//!   lookup (and after every potentially-writing uop while executing), so
//!   self-modifying code invalidates in O(1) exactly when the decoded-insn
//!   side table it was built from is invalidated.
//!
//! The cache itself is a dense one-slot-per-word table (like the
//! [`DecodeCache`]) with FIFO capacity eviction; a block is keyed by its
//! exact entry byte offset plus the generation it was built at, so stale or
//! aliased (unaligned-entry) hits rebuild in place.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::decode_cache::DecodeCache;
use crate::features::CoreModel;
use crate::insn::{Insn, MemSize};

/// Default number of cached blocks per memory image.
pub const DEFAULT_BLOCK_CAPACITY: usize = 4096;
/// Default maximum number of instructions per block.
pub const DEFAULT_MAX_BLOCK_LEN: usize = 64;

static DEFAULT_MICROOP: AtomicBool = AtomicBool::new(true);

/// Sets the *default* execution engine for cores built after this call:
/// `true` (the initial value) selects the pre-decoded micro-op block engine,
/// `false` the classic fetch/decode/execute step loop. Both produce
/// bit-identical results; the knob exists for differential testing and as
/// the `het-sim --engine` escape hatch.
///
/// Process-wide, intended for CLI entry points; tests that need a specific
/// engine on a specific core should use `Core::set_microop` instead to stay
/// race-free under the parallel test runner.
pub fn set_default_microop(on: bool) {
    DEFAULT_MICROOP.store(on, Ordering::Relaxed);
}

/// The current process-wide default core engine (see
/// [`set_default_microop`]).
#[must_use]
pub fn default_microop() -> bool {
    DEFAULT_MICROOP.load(Ordering::Relaxed)
}

/// Direct-dispatch handler index of a [`MicroOp`].
///
/// Hot operations get a dedicated variant with pre-resolved operands; the
/// cold/rare rest funnels through [`UopKind::Generic`], which re-executes
/// the original [`Insn`] on the reference path (bit-identical by
/// construction, and terminal ops end the block anyway).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum UopKind {
    /// `rd = ra + rb`
    Add,
    /// `rd = ra - rb`
    Sub,
    /// `rd = ra & rb`
    And,
    /// `rd = ra | rb`
    Or,
    /// `rd = ra ^ rb`
    Xor,
    /// `rd = ra << (rb & 31)`
    Sll,
    /// `rd = ra >> (rb & 31)` (logical)
    Srl,
    /// `rd = ra >> (rb & 31)` (arithmetic)
    Sra,
    /// `rd = (ra as i32) < (rb as i32)`
    Slt,
    /// `rd = ra < rb` (unsigned)
    Sltu,
    /// `rd = min(ra, rb)` (signed)
    Min,
    /// `rd = max(ra, rb)` (signed)
    Max,
    /// `rd = low32(ra * rb)`; `aux` = cycle count.
    Mul,
    /// `rd += low32(ra * rb)`; `aux` = cycle count (feature pre-checked).
    Mac,
    /// `rd = ra + imm`
    Addi,
    /// `rd = ra & imm`
    Andi,
    /// `rd = ra | imm`
    Ori,
    /// `rd = ra ^ imm`
    Xori,
    /// `rd = ra << imm` (pre-masked shift amount)
    Slli,
    /// `rd = ra >> imm` (logical, pre-masked)
    Srli,
    /// `rd = ra >> imm` (arithmetic, pre-masked)
    Srai,
    /// `rd = imm` (the `<< 14` applied at translation)
    Lui,
    /// 4×8-bit signed dot product accumulate (feature pre-checked).
    SdotV4,
    /// 2×16-bit signed dot product accumulate (feature pre-checked).
    SdotV2,
    /// Word load; `imm` = byte offset, `aux` = misalign penalty/fault.
    LdW,
    /// Signed half load.
    LdH,
    /// Unsigned half load.
    LdHu,
    /// Signed byte load.
    LdB,
    /// Unsigned byte load.
    LdBu,
    /// Post-incrementing word load; `imm` = increment.
    LdPiW,
    /// Post-incrementing signed half load.
    LdPiH,
    /// Post-incrementing unsigned half load.
    LdPiHu,
    /// Post-incrementing signed byte load.
    LdPiB,
    /// Post-incrementing unsigned byte load.
    LdPiBu,
    /// Word store; the source register rides in the `rd` field.
    StW,
    /// Half store.
    StH,
    /// Byte store.
    StB,
    /// Post-incrementing word store; `imm` = increment.
    StPiW,
    /// Post-incrementing half store.
    StPiH,
    /// Post-incrementing byte store.
    StPiB,
    /// Branch if `ra == rb`; `imm` = byte offset, `aux` = taken penalty.
    Beq,
    /// Branch if `ra != rb`.
    Bne,
    /// Branch if `(ra as i32) < (rb as i32)`.
    Blt,
    /// Branch if `(ra as i32) >= (rb as i32)`.
    Bge,
    /// Branch if `ra < rb` (unsigned).
    Bltu,
    /// Branch if `ra >= rb` (unsigned).
    Bgeu,
    /// `rd = pc + 4; pc += imm`; `aux` = taken penalty.
    Jal,
    /// `rd = pc + 4; pc = (ra + imm) & !3`; `aux` = taken penalty.
    Jalr,
    /// No operation.
    Nop,
    /// Anything else: re-execute the embedded [`Insn`] on the reference
    /// path (cold ops, system ops, and feature-gated ops the core lacks).
    Generic,
}

/// One pre-decoded micro-operation.
///
/// Field meaning depends on [`UopKind`] (see its variants); `insn` is the
/// originating instruction, kept for traces, `Generic` execution and
/// debugging.
#[derive(Clone, Copy, Debug)]
pub struct MicroOp {
    /// Dispatch index.
    pub kind: UopKind,
    /// Destination register index (source register for stores).
    pub rd: u8,
    /// First source register index.
    pub ra: u8,
    /// Second source register index.
    pub rb: u8,
    /// Pre-extended immediate / byte offset / post-increment.
    pub imm: i32,
    /// Pre-resolved timing: multi-cycle op latency, taken-branch penalty,
    /// or misalignment penalty (`u32::MAX` = misalignment faults).
    pub aux: u32,
    /// The originating instruction.
    pub insn: Insn,
}

/// A translated basic block: straight-line micro-ops from an entry offset
/// up to (and including) the first control-flow or system instruction.
#[derive(Debug)]
pub struct Block {
    /// [`DecodeCache::generation`] at build time; any later invalidation of
    /// decoded code bumps the generation and makes this block stale.
    pub gen: u64,
    /// Exact entry byte offset within the memory image (distinguishes
    /// unaligned entries that share a word slot).
    pub off: u32,
    /// The micro-ops; `uops[k]` executes at byte offset `off + 4k`.
    pub uops: Vec<MicroOp>,
}

/// Sentinel for "a misaligned access faults" in [`MicroOp::aux`].
const ALIGN_FAULT: u32 = u32::MAX;

/// Whether `insn` ends a basic block (control flow or a system op that
/// yields to the scheduler).
#[must_use]
pub fn is_terminal(insn: &Insn) -> bool {
    insn.is_control() || matches!(insn, Insn::Halt | Insn::Wfe | Insn::Sev(_) | Insn::Barrier)
}

/// Translates one instruction into a micro-op for `model`, resolving
/// feature gates and timing at translation time. Instructions the model
/// cannot execute (missing extension) become [`UopKind::Generic`] so the
/// reference path raises the identical error.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn translate(insn: Insn, model: &CoreModel) -> MicroOp {
    use Insn as I;
    let f = model.features;
    let t = model.timing;
    let mut uop = MicroOp {
        kind: UopKind::Generic,
        rd: 0,
        ra: 0,
        rb: 0,
        imm: 0,
        aux: 0,
        insn,
    };
    // Misalignment resolution for a non-byte access: penalty cycles when
    // the core supports unaligned accesses, fault otherwise.
    let mem_aux = if f.unaligned {
        t.unaligned_penalty
    } else {
        ALIGN_FAULT
    };
    fn rrr(uop: &mut MicroOp, kind: UopKind, d: crate::Reg, a: crate::Reg, b: crate::Reg) {
        uop.kind = kind;
        uop.rd = d.index();
        uop.ra = a.index();
        uop.rb = b.index();
    }
    match insn {
        I::Add(d, a, b) => rrr(&mut uop, UopKind::Add, d, a, b),
        I::Sub(d, a, b) => rrr(&mut uop, UopKind::Sub, d, a, b),
        I::And(d, a, b) => rrr(&mut uop, UopKind::And, d, a, b),
        I::Or(d, a, b) => rrr(&mut uop, UopKind::Or, d, a, b),
        I::Xor(d, a, b) => rrr(&mut uop, UopKind::Xor, d, a, b),
        I::Sll(d, a, b) => rrr(&mut uop, UopKind::Sll, d, a, b),
        I::Srl(d, a, b) => rrr(&mut uop, UopKind::Srl, d, a, b),
        I::Sra(d, a, b) => rrr(&mut uop, UopKind::Sra, d, a, b),
        I::Slt(d, a, b) => rrr(&mut uop, UopKind::Slt, d, a, b),
        I::Sltu(d, a, b) => rrr(&mut uop, UopKind::Sltu, d, a, b),
        I::Min(d, a, b) => rrr(&mut uop, UopKind::Min, d, a, b),
        I::Max(d, a, b) => rrr(&mut uop, UopKind::Max, d, a, b),
        I::Mul(d, a, b) => {
            rrr(&mut uop, UopKind::Mul, d, a, b);
            uop.aux = t.mul;
        }
        I::Mac(d, a, b) if f.mac => {
            rrr(&mut uop, UopKind::Mac, d, a, b);
            uop.aux = t.mac;
        }
        I::SdotV4(d, a, b) if f.simd_dot => rrr(&mut uop, UopKind::SdotV4, d, a, b),
        I::SdotV2(d, a, b) if f.simd_dot => rrr(&mut uop, UopKind::SdotV2, d, a, b),
        I::Addi(d, a, i) => {
            rrr(&mut uop, UopKind::Addi, d, a, crate::Reg::ZERO);
            uop.imm = i32::from(i);
        }
        I::Andi(d, a, i) => {
            rrr(&mut uop, UopKind::Andi, d, a, crate::Reg::ZERO);
            uop.imm = i32::from(i);
        }
        I::Ori(d, a, i) => {
            rrr(&mut uop, UopKind::Ori, d, a, crate::Reg::ZERO);
            uop.imm = i32::from(i);
        }
        I::Xori(d, a, i) => {
            rrr(&mut uop, UopKind::Xori, d, a, crate::Reg::ZERO);
            uop.imm = i32::from(i);
        }
        I::Slli(d, a, s) => {
            rrr(&mut uop, UopKind::Slli, d, a, crate::Reg::ZERO);
            uop.imm = i32::from(s & 31);
        }
        I::Srli(d, a, s) => {
            rrr(&mut uop, UopKind::Srli, d, a, crate::Reg::ZERO);
            uop.imm = i32::from(s & 31);
        }
        I::Srai(d, a, s) => {
            rrr(&mut uop, UopKind::Srai, d, a, crate::Reg::ZERO);
            uop.imm = i32::from(s & 31);
        }
        I::Lui(d, i) => {
            rrr(
                &mut uop,
                UopKind::Lui,
                d,
                crate::Reg::ZERO,
                crate::Reg::ZERO,
            );
            uop.imm = (i << 14) as i32;
        }
        I::Load {
            rd,
            base,
            offset,
            size,
            signed,
        } => {
            uop.kind = match (size, signed) {
                (MemSize::Word, _) => UopKind::LdW,
                (MemSize::Half, true) => UopKind::LdH,
                (MemSize::Half, false) => UopKind::LdHu,
                (MemSize::Byte, true) => UopKind::LdB,
                (MemSize::Byte, false) => UopKind::LdBu,
            };
            uop.rd = rd.index();
            uop.ra = base.index();
            uop.imm = i32::from(offset);
            uop.aux = mem_aux;
        }
        I::LoadPi {
            rd,
            base,
            inc,
            size,
            signed,
        } if f.post_increment => {
            uop.kind = match (size, signed) {
                (MemSize::Word, _) => UopKind::LdPiW,
                (MemSize::Half, true) => UopKind::LdPiH,
                (MemSize::Half, false) => UopKind::LdPiHu,
                (MemSize::Byte, true) => UopKind::LdPiB,
                (MemSize::Byte, false) => UopKind::LdPiBu,
            };
            uop.rd = rd.index();
            uop.ra = base.index();
            uop.imm = i32::from(inc);
            uop.aux = mem_aux;
        }
        I::Store {
            rs,
            base,
            offset,
            size,
        } => {
            uop.kind = match size {
                MemSize::Word => UopKind::StW,
                MemSize::Half => UopKind::StH,
                MemSize::Byte => UopKind::StB,
            };
            uop.rd = rs.index();
            uop.ra = base.index();
            uop.imm = i32::from(offset);
            uop.aux = mem_aux;
        }
        I::StorePi {
            rs,
            base,
            inc,
            size,
        } if f.post_increment => {
            uop.kind = match size {
                MemSize::Word => UopKind::StPiW,
                MemSize::Half => UopKind::StPiH,
                MemSize::Byte => UopKind::StPiB,
            };
            uop.rd = rs.index();
            uop.ra = base.index();
            uop.imm = i32::from(inc);
            uop.aux = mem_aux;
        }
        I::Beq(a, b, o)
        | I::Bne(a, b, o)
        | I::Blt(a, b, o)
        | I::Bge(a, b, o)
        | I::Bltu(a, b, o)
        | I::Bgeu(a, b, o) => {
            uop.kind = match insn {
                I::Beq(..) => UopKind::Beq,
                I::Bne(..) => UopKind::Bne,
                I::Blt(..) => UopKind::Blt,
                I::Bge(..) => UopKind::Bge,
                I::Bltu(..) => UopKind::Bltu,
                _ => UopKind::Bgeu,
            };
            uop.ra = a.index();
            uop.rb = b.index();
            uop.imm = o;
            uop.aux = t.taken_branch;
        }
        I::Jal(d, o) => {
            uop.kind = UopKind::Jal;
            uop.rd = d.index();
            uop.imm = o;
            uop.aux = t.taken_branch;
        }
        I::Jalr(d, a, i) => {
            uop.kind = UopKind::Jalr;
            uop.rd = d.index();
            uop.ra = a.index();
            uop.imm = i32::from(i);
            uop.aux = t.taken_branch;
        }
        I::Nop => uop.kind = UopKind::Nop,
        // Cold, system, or feature-lacking ops (including the guarded
        // arms above falling through): reference path.
        _ => {}
    }
    uop
}

/// Walks the image from byte offset `off` and translates one basic block.
///
/// Instruction words are pulled through `decoded` — exactly the fetch path
/// of the reference engine — so every word a block covers has a decoded
/// slot, which is what ties block staleness to
/// [`DecodeCache::generation`]: any store that clears one of those slots
/// bumps the generation. The walk stops at (and includes) the first
/// terminal instruction, and also ends at an undecodable word, at
/// `max_len` micro-ops, or at the end of the image.
#[must_use]
pub fn build_uops(
    off: usize,
    data: &[u8],
    decoded: &mut DecodeCache,
    model: &CoreModel,
    max_len: usize,
) -> Vec<MicroOp> {
    // Size for the longest block this walk can produce: `max_len` uops or
    // every remaining word in the image, whichever cuts first. Blocks end
    // early at terminals, but the slack never exceeds one small block and
    // the translation loop stops re-allocating entirely.
    let mut uops = Vec::with_capacity(max_len.min(data.len().saturating_sub(off) / 4));
    let mut o = off;
    while uops.len() < max_len && o + 4 <= data.len() {
        let Some(insn) = decoded.fetch(o, data) else {
            break;
        };
        uops.push(translate(insn, model));
        if is_terminal(&insn) {
            break;
        }
        o += 4;
    }
    uops
}

/// Per-memory-image cache of translated [`Block`]s.
///
/// Dense layout: one slot per 4-byte word (same indexing as the
/// [`DecodeCache`] it validates against), plus a FIFO order queue for
/// capacity eviction. Blocks are shared out as [`Arc`]s so an eviction or
/// invalidation cannot pull a block out from under an executing core.
#[derive(Clone, Debug)]
pub struct BlockCache {
    slots: Vec<Option<Arc<Block>>>,
    /// Slot indices currently occupied, oldest first (FIFO eviction).
    /// Invariant: contains exactly the `Some` slots, each once.
    order: std::collections::VecDeque<u32>,
    /// Core model the cached blocks were translated for; a lookup with a
    /// different model flushes (images are re-run across models in tests
    /// and sweeps, never concurrently).
    model: Option<CoreModel>,
    capacity: usize,
    max_block_len: usize,
}

impl BlockCache {
    /// Creates a cache for an image of `size_bytes` with default limits.
    #[must_use]
    pub fn new(size_bytes: usize) -> Self {
        Self::with_limits(size_bytes, DEFAULT_BLOCK_CAPACITY, DEFAULT_MAX_BLOCK_LEN)
    }

    /// Creates a cache with explicit capacity (blocks) and block length
    /// (instructions) limits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `max_block_len` is zero.
    #[must_use]
    pub fn with_limits(size_bytes: usize, capacity: usize, max_block_len: usize) -> Self {
        assert!(capacity > 0 && max_block_len > 0);
        BlockCache {
            slots: vec![None; size_bytes.div_ceil(4)],
            order: std::collections::VecDeque::new(),
            model: None,
            capacity,
            max_block_len,
        }
    }

    /// Number of blocks currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the cache holds no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Drops every cached block.
    pub fn flush(&mut self) {
        while let Some(slot) = self.order.pop_front() {
            self.slots[slot as usize] = None;
        }
    }

    /// Returns the block entered at byte offset `off`, building (or
    /// rebuilding, when stale) it from `data` through `decoded`. `None`
    /// means no block starts here — the first word is undecodable or out of
    /// range — and the caller must fall back to a reference step, which
    /// reproduces the exact fetch error.
    pub fn lookup(
        &mut self,
        off: usize,
        data: &[u8],
        decoded: &mut DecodeCache,
        model: &CoreModel,
    ) -> Option<Arc<Block>> {
        if self.model.as_ref() != Some(model) {
            self.flush();
            self.model = Some(*model);
        }
        let slot = off / 4;
        if slot >= self.slots.len() {
            return None;
        }
        if let Some(b) = &self.slots[slot] {
            if b.gen == decoded.generation() && b.off == off as u32 {
                return Some(Arc::clone(b));
            }
        }
        let uops = build_uops(off, data, decoded, model, self.max_block_len);
        if uops.is_empty() {
            return None;
        }
        let block = Arc::new(Block {
            gen: decoded.generation(),
            off: off as u32,
            uops,
        });
        if self.slots[slot].is_none() {
            while self.order.len() >= self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.slots[old as usize] = None;
                }
            }
            self.order.push_back(slot as u32);
        }
        self.slots[slot] = Some(Arc::clone(&block));
        Some(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::named::*;

    /// Assembles `build`'s program and returns (bytes, fresh decode cache).
    fn image(build: impl FnOnce(&mut Asm)) -> (Vec<u8>, DecodeCache) {
        let mut a = Asm::new();
        build(&mut a);
        let prog = a.finish().expect("assembles");
        let mut bytes = Vec::new();
        for w in prog.words() {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let decoded = DecodeCache::new(bytes.len());
        (bytes, decoded)
    }

    #[test]
    fn block_ends_at_first_terminal_inclusive() {
        let (data, mut dec) = image(|a| {
            a.addi(R1, R0, 1);
            a.addi(R2, R0, 2);
            let l = a.new_label();
            a.bind(l);
            a.bne(R1, R2, l);
            a.addi(R3, R0, 3);
            a.halt();
        });
        let model = CoreModel::or10n();
        let b = build_uops(0, &data, &mut dec, &model, DEFAULT_MAX_BLOCK_LEN);
        assert_eq!(b.len(), 3, "two addis plus the terminal branch");
        assert_eq!(b[2].kind, UopKind::Bne);
    }

    #[test]
    fn cross_block_fallthrough_starts_a_new_block_after_the_branch() {
        let (data, mut dec) = image(|a| {
            let l = a.new_label();
            a.bind(l);
            a.beq(R1, R1, l); // terminal for block 0
            a.addi(R3, R0, 3); // block 1 entry on fall-through
            a.addi(R4, R0, 4);
            a.halt();
        });
        let model = CoreModel::risc_baseline();
        let mut cache = BlockCache::new(data.len());
        let b0 = cache.lookup(0, &data, &mut dec, &model).unwrap();
        assert_eq!(b0.uops.len(), 1);
        assert_eq!(b0.uops[0].kind, UopKind::Beq);
        // The fall-through successor is its own block, covering the rest.
        let b1 = cache.lookup(4, &data, &mut dec, &model).unwrap();
        assert_eq!(b1.off, 4);
        assert_eq!(b1.uops.len(), 3);
        assert_eq!(b1.uops[2].kind, UopKind::Generic); // halt
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn max_block_length_clamp() {
        let (data, mut dec) = image(|a| {
            for _ in 0..50 {
                a.nop();
            }
            a.halt();
        });
        let model = CoreModel::risc_baseline();
        let mut cache = BlockCache::with_limits(data.len(), 16, 8);
        let b = cache.lookup(0, &data, &mut dec, &model).unwrap();
        assert_eq!(b.uops.len(), 8, "clamped below the 51-insn extent");
        // The continuation block picks up where the clamp cut.
        let b2 = cache.lookup(8 * 4, &data, &mut dec, &model).unwrap();
        assert_eq!(b2.off, 32);
        assert_eq!(b2.uops.len(), 8);
    }

    #[test]
    fn block_ending_exactly_at_image_boundary() {
        // No terminal instruction at all: straight-line code running into
        // the end of the image. The block must stop cleanly at the last
        // whole word and never read past `data.len()`.
        let (data, mut dec) = image(|a| {
            a.addi(R1, R0, 1);
            a.addi(R2, R0, 2);
            a.addi(R3, R0, 3);
        });
        assert_eq!(data.len(), 12);
        let model = CoreModel::risc_baseline();
        let b = build_uops(0, &data, &mut dec, &model, DEFAULT_MAX_BLOCK_LEN);
        assert_eq!(b.len(), 3);
        // An entry at the exact boundary yields no block (nothing to run).
        let mut cache = BlockCache::new(data.len());
        assert!(cache.lookup(12, &data, &mut dec, &model).is_none());
        // And an unaligned entry near the boundary cannot read past it.
        let tail = build_uops(10, &data, &mut dec, &model, DEFAULT_MAX_BLOCK_LEN);
        assert!(tail.is_empty() || tail.len() == 1);
    }

    #[test]
    fn generation_bump_on_store_to_code_rebuilds_block() {
        let (data, mut dec) = image(|a| {
            a.addi(R1, R0, 1);
            a.addi(R2, R0, 2);
            a.halt();
        });
        let model = CoreModel::risc_baseline();
        let mut cache = BlockCache::new(data.len());
        let b0 = cache.lookup(0, &data, &mut dec, &model).unwrap();
        let again = cache.lookup(0, &data, &mut dec, &model).unwrap();
        assert!(Arc::ptr_eq(&b0, &again), "clean hit reuses the block");
        // A store into the *decoded* range bumps the generation: the next
        // lookup must rebuild even though the slot is occupied.
        dec.invalidate(4, 4);
        let rebuilt = cache.lookup(0, &data, &mut dec, &model).unwrap();
        assert!(!Arc::ptr_eq(&b0, &rebuilt), "stale block was rebuilt");
        assert_eq!(cache.len(), 1, "rebuild replaces in place");
        assert_eq!(rebuilt.gen, dec.generation());
    }

    #[test]
    fn capacity_eviction_is_fifo() {
        let (data, mut dec) = image(|a| {
            for _ in 0..8 {
                a.nop();
            }
            a.halt();
        });
        let model = CoreModel::risc_baseline();
        // Every entry offset makes a distinct block; capacity 2.
        let mut cache = BlockCache::with_limits(data.len(), 2, 4);
        let b0 = cache.lookup(0, &data, &mut dec, &model).unwrap();
        let _b1 = cache.lookup(4, &data, &mut dec, &model).unwrap();
        assert_eq!(cache.len(), 2);
        let _b2 = cache.lookup(8, &data, &mut dec, &model).unwrap();
        assert_eq!(cache.len(), 2, "capacity holds");
        // Oldest (offset 0) was evicted: looking it up again rebuilds.
        let b0_again = cache.lookup(0, &data, &mut dec, &model).unwrap();
        assert!(!Arc::ptr_eq(&b0, &b0_again), "FIFO evicted the oldest");
    }

    #[test]
    fn unaligned_entry_does_not_alias_the_word_slot() {
        let (data, mut dec) = image(|a| {
            for _ in 0..4 {
                a.nop();
            }
            a.halt();
        });
        let model = CoreModel::or10n();
        let mut cache = BlockCache::new(data.len());
        let aligned = cache.lookup(0, &data, &mut dec, &model).unwrap();
        // Entry at pc 2 shares word slot 0 but must not hit the aligned
        // block: the stored entry offset disambiguates.
        if let Some(b) = cache.lookup(2, &data, &mut dec, &model) {
            assert_eq!(b.off, 2);
            assert!(!Arc::ptr_eq(&aligned, &b));
        }
        // And the aligned entry re-verifies `off`, rebuilding as needed.
        let back = cache.lookup(0, &data, &mut dec, &model).unwrap();
        assert_eq!(back.off, 0);
    }

    #[test]
    fn model_switch_flushes() {
        let (data, mut dec) = image(|a| {
            a.insn(Insn::Mac(R3, R1, R2));
            a.halt();
        });
        let mut cache = BlockCache::new(data.len());
        let or10n = cache
            .lookup(0, &data, &mut dec, &CoreModel::or10n())
            .unwrap();
        assert_eq!(or10n.uops[0].kind, UopKind::Mac);
        // The baseline lacks `mac`: same bytes must translate to Generic
        // (which faults at execution, like the reference engine).
        let base = cache
            .lookup(0, &data, &mut dec, &CoreModel::risc_baseline())
            .unwrap();
        assert_eq!(base.uops[0].kind, UopKind::Generic);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn translate_preresolves_immediates_and_timing() {
        let m = CoreModel::cortex_m3();
        let lui = translate(Insn::Lui(R1, 3), &m);
        assert_eq!((lui.kind, lui.imm), (UopKind::Lui, 3 << 14));
        let addi = translate(Insn::Addi(R1, R2, -5), &m);
        assert_eq!(addi.imm, -5);
        let b = translate(Insn::Beq(R1, R2, -16), &m);
        assert_eq!((b.imm, b.aux), (-16, m.timing.taken_branch));
        let mul = translate(Insn::Mul(R1, R2, R3), &m);
        assert_eq!(mul.aux, m.timing.mul);
        // Misalignment policy: penalty on unaligned-capable cores, fault
        // sentinel otherwise.
        let ld = |model: &CoreModel| {
            translate(
                Insn::Load {
                    rd: R1,
                    base: R2,
                    offset: 8,
                    size: MemSize::Word,
                    signed: true,
                },
                model,
            )
        };
        assert_eq!(ld(&m).aux, m.timing.unaligned_penalty);
        assert_eq!(ld(&CoreModel::risc_baseline()).aux, u32::MAX);
        // Post-increment without the feature goes Generic.
        let pi = translate(
            Insn::LoadPi {
                rd: R1,
                base: R2,
                inc: 4,
                size: MemSize::Word,
                signed: true,
            },
            &CoreModel::or10n(),
        );
        assert_eq!(pi.kind, UopKind::Generic);
    }
}
