//! The UIR instruction set.
//!
//! UIR is a 32-bit load/store RISC ISA with a base subset (comparable to the
//! original MIPS / OpenRISC 1000, per the paper's definition of a "RISC op")
//! plus feature-gated extensions modelling the OR10N and ARMv7E-M
//! microarchitectural enhancements:
//!
//! * **`mac`** — register-register multiply-accumulate ([`Insn::Mac`]),
//! * **`simd_dot`** — sub-word ("infra-word") 4×8-bit and 2×16-bit dot
//!   products and packed adds ([`Insn::SdotV4`] et al.),
//! * **`hw_loops`** — two nested zero-overhead hardware loops
//!   ([`Insn::LpSetup`]),
//! * **`post_increment`** — post-incrementing loads/stores
//!   ([`Insn::LoadPi`]/[`Insn::StorePi`]),
//! * **`mul64`** — 32×32→64 multiply and multiply-accumulate
//!   ([`Insn::Mull`]/[`Insn::Mlal`], the ARM `UMULL`/`SMLAL` family that
//!   OR10N *lacks* — the root cause of the paper's `hog` slowdown),
//! * **`unaligned`** — hardware support for unaligned load/store.

use std::fmt;

use crate::reg::Reg;

/// Access width of a memory operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemSize {
    /// 8-bit access.
    Byte,
    /// 16-bit access.
    Half,
    /// 32-bit access.
    Word,
}

impl MemSize {
    /// Number of bytes moved by an access of this size.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            MemSize::Byte => 1,
            MemSize::Half => 2,
            MemSize::Word => 4,
        }
    }
}

impl fmt::Display for MemSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemSize::Byte => "b",
            MemSize::Half => "h",
            MemSize::Word => "w",
        };
        f.write_str(s)
    }
}

/// Control and status registers readable with [`Insn::Csrr`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Csr {
    /// Index of the executing core within its cluster (0-based).
    CoreId,
    /// Number of cores in the cluster.
    NumCores,
    /// Low 32 bits of the core-local cycle counter.
    CycleLo,
    /// Low 32 bits of the retired-instruction counter.
    InstRetLo,
}

impl Csr {
    /// Stable numeric id used by the binary encoding.
    #[must_use]
    pub fn id(self) -> u16 {
        match self {
            Csr::CoreId => 0,
            Csr::NumCores => 1,
            Csr::CycleLo => 2,
            Csr::InstRetLo => 3,
        }
    }

    /// Inverse of [`Csr::id`].
    #[must_use]
    pub fn from_id(id: u16) -> Option<Self> {
        Some(match id {
            0 => Csr::CoreId,
            1 => Csr::NumCores,
            2 => Csr::CycleLo,
            3 => Csr::InstRetLo,
            _ => return None,
        })
    }
}

/// A single UIR instruction.
///
/// Branch and jump offsets are in **bytes** relative to the address of the
/// branch instruction itself (the assembler computes them from labels).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Insn {
    // ---- base ALU, register-register ----------------------------------
    /// `rd = ra + rb`
    Add(Reg, Reg, Reg),
    /// `rd = ra - rb`
    Sub(Reg, Reg, Reg),
    /// `rd = ra & rb`
    And(Reg, Reg, Reg),
    /// `rd = ra | rb`
    Or(Reg, Reg, Reg),
    /// `rd = ra ^ rb`
    Xor(Reg, Reg, Reg),
    /// `rd = ra << (rb & 31)`
    Sll(Reg, Reg, Reg),
    /// `rd = ra >> (rb & 31)` (logical)
    Srl(Reg, Reg, Reg),
    /// `rd = ra >> (rb & 31)` (arithmetic)
    Sra(Reg, Reg, Reg),
    /// `rd = (ra as i32) < (rb as i32)`
    Slt(Reg, Reg, Reg),
    /// `rd = ra < rb` (unsigned)
    Sltu(Reg, Reg, Reg),
    /// `rd = min(ra, rb)` (signed)
    Min(Reg, Reg, Reg),
    /// `rd = max(ra, rb)` (signed)
    Max(Reg, Reg, Reg),
    /// `rd = low32(ra * rb)`
    Mul(Reg, Reg, Reg),
    /// `rd = (ra as i32) / (rb as i32)`; division by zero yields `-1`.
    Div(Reg, Reg, Reg),
    /// `rd = ra / rb` (unsigned); division by zero yields `u32::MAX`.
    Divu(Reg, Reg, Reg),

    // ---- extensions: multiply-accumulate ------------------------------
    /// `rd += low32(ra * rb)` — requires the `mac` feature.
    Mac(Reg, Reg, Reg),
    /// `{rd_hi,rd_lo} = ra * rb` (full 64-bit product) — requires `mul64`.
    Mull {
        /// High half destination.
        rd_hi: Reg,
        /// Low half destination.
        rd_lo: Reg,
        /// First operand.
        ra: Reg,
        /// Second operand.
        rb: Reg,
        /// Signed (`SMULL`) vs unsigned (`UMULL`) semantics.
        signed: bool,
    },
    /// `{rd_hi,rd_lo} += ra * rb` (64-bit accumulate) — requires `mul64`.
    Mlal {
        /// High half accumulator.
        rd_hi: Reg,
        /// Low half accumulator.
        rd_lo: Reg,
        /// First operand.
        ra: Reg,
        /// Second operand.
        rb: Reg,
        /// Signed (`SMLAL`) vs unsigned (`UMLAL`) semantics.
        signed: bool,
    },

    // ---- extensions: sub-word SIMD -------------------------------------
    /// `rd += Σ_{i<4} sext8(ra.byte[i]) * sext8(rb.byte[i])` — `simd_dot`.
    SdotV4(Reg, Reg, Reg),
    /// `rd += Σ_{i<2} sext16(ra.half[i]) * sext16(rb.half[i])` — `simd_dot`.
    SdotV2(Reg, Reg, Reg),
    /// Packed 4×8-bit add (wrapping lanes) — `simd_dot`.
    AddV4(Reg, Reg, Reg),
    /// Packed 2×16-bit add (wrapping lanes) — `simd_dot`.
    AddV2(Reg, Reg, Reg),
    /// Packed 4×8-bit subtract (wrapping lanes) — `simd_dot`.
    SubV4(Reg, Reg, Reg),
    /// Packed 2×16-bit subtract (wrapping lanes) — `simd_dot`.
    SubV2(Reg, Reg, Reg),

    // ---- ALU, immediate -------------------------------------------------
    /// `rd = ra + sext(imm)`
    Addi(Reg, Reg, i16),
    /// `rd = ra & zext(imm)`
    Andi(Reg, Reg, u16),
    /// `rd = ra | zext(imm)`
    Ori(Reg, Reg, u16),
    /// `rd = ra ^ zext(imm)`
    Xori(Reg, Reg, u16),
    /// `rd = ra << sh`
    Slli(Reg, Reg, u8),
    /// `rd = ra >> sh` (logical)
    Srli(Reg, Reg, u8),
    /// `rd = ra >> sh` (arithmetic)
    Srai(Reg, Reg, u8),
    /// `rd = imm << 14` — loads the upper 18 bits of a constant.
    Lui(Reg, u32),

    // ---- memory ---------------------------------------------------------
    /// `rd = sign_or_zero_extend(mem[ra + sext(offset)])`
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i16,
        /// Access width.
        size: MemSize,
        /// Sign-extend (`true`) or zero-extend the loaded value.
        signed: bool,
    },
    /// Post-incrementing load: `rd = mem[base]; base += inc` — requires
    /// `post_increment`.
    LoadPi {
        /// Destination register.
        rd: Reg,
        /// Base address register, updated after the access.
        base: Reg,
        /// Byte increment applied to `base` after the access.
        inc: i16,
        /// Access width.
        size: MemSize,
        /// Sign-extend (`true`) or zero-extend the loaded value.
        signed: bool,
    },
    /// `mem[base + sext(offset)] = truncate(rs)`
    Store {
        /// Source register.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i16,
        /// Access width.
        size: MemSize,
    },
    /// Post-incrementing store: `mem[base] = rs; base += inc` — requires
    /// `post_increment`.
    StorePi {
        /// Source register.
        rs: Reg,
        /// Base address register, updated after the access.
        base: Reg,
        /// Byte increment applied to `base` after the access.
        inc: i16,
        /// Access width.
        size: MemSize,
    },
    /// Atomic test-and-set: `rd = mem32[ra]; mem32[ra] = 1`.
    ///
    /// Models the PULP TCDM test-and-set aliases used for locks.
    Tas(Reg, Reg),

    // ---- control flow ----------------------------------------------------
    /// Branch if `ra == rb`.
    Beq(Reg, Reg, i32),
    /// Branch if `ra != rb`.
    Bne(Reg, Reg, i32),
    /// Branch if `(ra as i32) < (rb as i32)`.
    Blt(Reg, Reg, i32),
    /// Branch if `(ra as i32) >= (rb as i32)`.
    Bge(Reg, Reg, i32),
    /// Branch if `ra < rb` (unsigned).
    Bltu(Reg, Reg, i32),
    /// Branch if `ra >= rb` (unsigned).
    Bgeu(Reg, Reg, i32),
    /// `rd = pc + 4; pc += offset`
    Jal(Reg, i32),
    /// `rd = pc + 4; pc = (ra + sext(imm)) & !3`
    Jalr(Reg, Reg, i16),
    /// Hardware-loop setup — requires `hw_loops`.
    ///
    /// Declares that the instructions in `(pc+4) ..= (pc+body_end)` form a
    /// zero-overhead loop body executed `count` times (read from the
    /// register at setup time). `idx` selects one of two nested loop units;
    /// loop 0 must nest inside loop 1.
    LpSetup {
        /// Loop unit index (0 = innermost, 1 = outer).
        idx: u8,
        /// Register holding the iteration count (sampled at setup).
        count: Reg,
        /// Byte offset from this instruction to the *last* instruction of
        /// the loop body.
        body_end: i32,
    },

    // ---- system -----------------------------------------------------------
    /// Read a control/status register.
    Csrr(Reg, Csr),
    /// No operation.
    Nop,
    /// Stop the core; it transitions to the halted state.
    Halt,
    /// Sleep until an event arrives (clock-gated, as in the PULP HW
    /// synchronizer).
    Wfe,
    /// Send event `id`: id 0 = the end-of-computation wire towards the host,
    /// ids `1..=32` wake cluster core `id - 1`, id 33 broadcasts to all
    /// cluster cores.
    Sev(u8),
    /// Arrive at the cluster barrier and sleep until all participating cores
    /// arrive (HW-synchronizer barrier).
    Barrier,
}

impl Insn {
    /// Whether this instruction reads or writes data memory.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Insn::Load { .. }
                | Insn::LoadPi { .. }
                | Insn::Store { .. }
                | Insn::StorePi { .. }
                | Insn::Tas(..)
        )
    }

    /// Whether this instruction may redirect control flow.
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Insn::Beq(..)
                | Insn::Bne(..)
                | Insn::Blt(..)
                | Insn::Bge(..)
                | Insn::Bltu(..)
                | Insn::Bgeu(..)
                | Insn::Jal(..)
                | Insn::Jalr(..)
        )
    }

    /// Whether this instruction belongs to a feature-gated ISA extension
    /// (and therefore faults on cores lacking the corresponding feature).
    #[must_use]
    pub fn is_extension(&self) -> bool {
        matches!(
            self,
            Insn::Mac(..)
                | Insn::Mull { .. }
                | Insn::Mlal { .. }
                | Insn::SdotV4(..)
                | Insn::SdotV2(..)
                | Insn::AddV4(..)
                | Insn::AddV2(..)
                | Insn::SubV4(..)
                | Insn::SubV2(..)
                | Insn::LoadPi { .. }
                | Insn::StorePi { .. }
                | Insn::LpSetup { .. }
        )
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Insn::*;
        match *self {
            Add(d, a, b) => write!(f, "add {d}, {a}, {b}"),
            Sub(d, a, b) => write!(f, "sub {d}, {a}, {b}"),
            And(d, a, b) => write!(f, "and {d}, {a}, {b}"),
            Or(d, a, b) => write!(f, "or {d}, {a}, {b}"),
            Xor(d, a, b) => write!(f, "xor {d}, {a}, {b}"),
            Sll(d, a, b) => write!(f, "sll {d}, {a}, {b}"),
            Srl(d, a, b) => write!(f, "srl {d}, {a}, {b}"),
            Sra(d, a, b) => write!(f, "sra {d}, {a}, {b}"),
            Slt(d, a, b) => write!(f, "slt {d}, {a}, {b}"),
            Sltu(d, a, b) => write!(f, "sltu {d}, {a}, {b}"),
            Min(d, a, b) => write!(f, "min {d}, {a}, {b}"),
            Max(d, a, b) => write!(f, "max {d}, {a}, {b}"),
            Mul(d, a, b) => write!(f, "mul {d}, {a}, {b}"),
            Div(d, a, b) => write!(f, "div {d}, {a}, {b}"),
            Divu(d, a, b) => write!(f, "divu {d}, {a}, {b}"),
            Mac(d, a, b) => write!(f, "mac {d}, {a}, {b}"),
            Mull {
                rd_hi,
                rd_lo,
                ra,
                rb,
                signed,
            } => {
                write!(
                    f,
                    "{}mull {rd_hi}:{rd_lo}, {ra}, {rb}",
                    if signed { "s" } else { "u" }
                )
            }
            Mlal {
                rd_hi,
                rd_lo,
                ra,
                rb,
                signed,
            } => {
                write!(
                    f,
                    "{}mlal {rd_hi}:{rd_lo}, {ra}, {rb}",
                    if signed { "s" } else { "u" }
                )
            }
            SdotV4(d, a, b) => write!(f, "sdot.v4 {d}, {a}, {b}"),
            SdotV2(d, a, b) => write!(f, "sdot.v2 {d}, {a}, {b}"),
            AddV4(d, a, b) => write!(f, "add.v4 {d}, {a}, {b}"),
            AddV2(d, a, b) => write!(f, "add.v2 {d}, {a}, {b}"),
            SubV4(d, a, b) => write!(f, "sub.v4 {d}, {a}, {b}"),
            SubV2(d, a, b) => write!(f, "sub.v2 {d}, {a}, {b}"),
            Addi(d, a, i) => write!(f, "addi {d}, {a}, {i}"),
            Andi(d, a, i) => write!(f, "andi {d}, {a}, {i:#x}"),
            Ori(d, a, i) => write!(f, "ori {d}, {a}, {i:#x}"),
            Xori(d, a, i) => write!(f, "xori {d}, {a}, {i:#x}"),
            Slli(d, a, s) => write!(f, "slli {d}, {a}, {s}"),
            Srli(d, a, s) => write!(f, "srli {d}, {a}, {s}"),
            Srai(d, a, s) => write!(f, "srai {d}, {a}, {s}"),
            Lui(d, i) => write!(f, "lui {d}, {i:#x}"),
            Load {
                rd,
                base,
                offset,
                size,
                signed,
            } => {
                write!(
                    f,
                    "l{size}{} {rd}, {offset}({base})",
                    if signed { "" } else { "u" }
                )
            }
            LoadPi {
                rd,
                base,
                inc,
                size,
                signed,
            } => {
                write!(
                    f,
                    "l{size}{}.pi {rd}, ({base})+{inc}",
                    if signed { "" } else { "u" }
                )
            }
            Store {
                rs,
                base,
                offset,
                size,
            } => write!(f, "s{size} {rs}, {offset}({base})"),
            StorePi {
                rs,
                base,
                inc,
                size,
            } => write!(f, "s{size}.pi {rs}, ({base})+{inc}"),
            Tas(d, a) => write!(f, "tas {d}, ({a})"),
            Beq(a, b, o) => write!(f, "beq {a}, {b}, {o:+}"),
            Bne(a, b, o) => write!(f, "bne {a}, {b}, {o:+}"),
            Blt(a, b, o) => write!(f, "blt {a}, {b}, {o:+}"),
            Bge(a, b, o) => write!(f, "bge {a}, {b}, {o:+}"),
            Bltu(a, b, o) => write!(f, "bltu {a}, {b}, {o:+}"),
            Bgeu(a, b, o) => write!(f, "bgeu {a}, {b}, {o:+}"),
            Jal(d, o) => write!(f, "jal {d}, {o:+}"),
            Jalr(d, a, i) => write!(f, "jalr {d}, {a}, {i}"),
            LpSetup {
                idx,
                count,
                body_end,
            } => {
                write!(f, "lp.setup l{idx}, {count}, {body_end:+}")
            }
            Csrr(d, c) => write!(f, "csrr {d}, {c:?}"),
            Nop => write!(f, "nop"),
            Halt => write!(f, "halt"),
            Wfe => write!(f, "wfe"),
            Sev(id) => write!(f, "sev {id}"),
            Barrier => write!(f, "barrier"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::named::*;

    #[test]
    fn mem_size_bytes() {
        assert_eq!(MemSize::Byte.bytes(), 1);
        assert_eq!(MemSize::Half.bytes(), 2);
        assert_eq!(MemSize::Word.bytes(), 4);
    }

    #[test]
    fn csr_id_roundtrip() {
        for csr in [Csr::CoreId, Csr::NumCores, Csr::CycleLo, Csr::InstRetLo] {
            assert_eq!(Csr::from_id(csr.id()), Some(csr));
        }
        assert_eq!(Csr::from_id(999), None);
    }

    #[test]
    fn classification_predicates() {
        assert!(Insn::Load {
            rd: R1,
            base: R2,
            offset: 0,
            size: MemSize::Word,
            signed: true
        }
        .is_mem());
        assert!(Insn::Beq(R1, R2, -8).is_control());
        assert!(Insn::Mac(R1, R2, R3).is_extension());
        assert!(!Insn::Add(R1, R2, R3).is_extension());
        assert!(!Insn::Add(R1, R2, R3).is_mem());
    }

    #[test]
    fn display_is_never_empty() {
        let samples = [
            Insn::Nop,
            Insn::Add(R1, R2, R3),
            Insn::Load {
                rd: R1,
                base: R2,
                offset: -4,
                size: MemSize::Half,
                signed: false,
            },
            Insn::LpSetup {
                idx: 0,
                count: R5,
                body_end: 16,
            },
            Insn::Mull {
                rd_hi: R4,
                rd_lo: R5,
                ra: R6,
                rb: R7,
                signed: true,
            },
        ];
        for insn in samples {
            assert!(!insn.to_string().is_empty());
        }
    }

    #[test]
    fn display_examples() {
        assert_eq!(Insn::SdotV4(R3, R4, R5).to_string(), "sdot.v4 r3, r4, r5");
        assert_eq!(
            Insn::Load {
                rd: R1,
                base: R2,
                offset: 8,
                size: MemSize::Byte,
                signed: false
            }
            .to_string(),
            "lbu r1, 8(r2)"
        );
    }
}
