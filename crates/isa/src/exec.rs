//! Cycle-level in-order core interpreter.
//!
//! A [`Core`] models a single-issue in-order pipeline (the OR10N and
//! Cortex-M cores of the paper are both of this class): one instruction
//! retires per cycle except for multi-cycle arithmetic, taken-branch
//! refills, and memory stalls reported by the [`Bus`].
//!
//! The core keeps a **local time** counter. Memory requests carry the local
//! issue time and the bus answers with the completion time; shared resources
//! (TCDM banks, DMA, the event unit) are arbitrated inside the bus
//! implementation (see `ulp-cluster`). This approximately-timed style
//! reproduces bank contention and barrier synchronization without lockstep
//! simulation.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use ulp_trace::{Component, EventKind, Tracer};

use crate::features::CoreModel;
use crate::insn::{Csr, Insn, MemSize};
use crate::reg::Reg;
use crate::uop::{Block, MicroOp, UopKind};

/// Error reported by a [`Bus`] implementation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BusError {
    /// No device is mapped at this address.
    Unmapped {
        /// Faulting byte address.
        addr: u32,
    },
    /// The access runs past the end of the mapped region.
    OutOfBounds {
        /// Faulting byte address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::Unmapped { addr } => write!(f, "no device mapped at {addr:#010x}"),
            BusError::OutOfBounds { addr, size } => {
                write!(f, "{size}-byte access at {addr:#010x} out of bounds")
            }
        }
    }
}

impl Error for BusError {}

/// A completed memory access: the raw value and the time it became available.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Access {
    /// Loaded bytes, right-aligned (unextended).
    pub value: u32,
    /// Core-local cycle at which the data is available (≥ issue time + 1).
    pub ready_at: u64,
}

/// A fetched instruction and the time it became available.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fetched {
    /// Decoded instruction.
    pub insn: Insn,
    /// Cycle at which the fetch completed (equals the issue time on an
    /// instruction-cache hit).
    pub ready_at: u64,
}

/// Memory system seen by a core.
///
/// Implementations route accesses to TCDM banks, L2 or flat memory and model
/// their latency and contention; `core_id` and `now` let shared resources
/// arbitrate between requestors.
pub trait Bus {
    /// Performs a data load of `size` bytes at `addr`, issued at local time
    /// `now`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] if the address is unmapped or out of bounds.
    fn load(
        &mut self,
        core_id: usize,
        now: u64,
        addr: u32,
        size: MemSize,
    ) -> Result<Access, BusError>;

    /// Performs a data store. Returns the completion time.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] if the address is unmapped or out of bounds.
    fn store(
        &mut self,
        core_id: usize,
        now: u64,
        addr: u32,
        size: MemSize,
        value: u32,
    ) -> Result<u64, BusError>;

    /// Atomic test-and-set of the 32-bit word at `addr`: returns the old
    /// value and writes 1.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] if the address is unmapped or out of bounds.
    fn tas(&mut self, core_id: usize, now: u64, addr: u32) -> Result<Access, BusError>;

    /// Fetches and decodes the instruction at `pc` (instruction-cache model
    /// lives behind this call).
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] if `pc` is unmapped, out of bounds, or holds an
    /// undecodable word.
    fn fetch(&mut self, core_id: usize, now: u64, pc: u32) -> Result<Fetched, BusError>;

    /// Timing-only half of [`Bus::fetch`], used by the micro-op block
    /// engine: charges the instruction-cache model for the fetch at `pc`
    /// (the decode already happened at block build time) and returns the
    /// completion time. Must mutate I$ state and emit the same trace events
    /// as a full `fetch`, so per-instruction I$ statistics stay identical
    /// across engines. The default models an always-hitting fetch.
    fn fetch_timing(&mut self, core_id: usize, now: u64, pc: u32) -> u64 {
        let _ = (core_id, pc);
        now
    }

    /// Returns the pre-decoded micro-op block entered at `pc`, if this bus
    /// backs instruction fetches with a [`BlockCache`](crate::BlockCache).
    /// `None` sends the core down the reference [`Core::step`] path for one
    /// instruction (which reproduces the exact fetch error for undecodable
    /// or unmapped `pc`s).
    fn microop_block(&mut self, core_id: usize, pc: u32, model: &CoreModel) -> Option<Arc<Block>> {
        let _ = (core_id, pc, model);
        None
    }

    /// Generation counter of the decoded-code side table behind instruction
    /// fetches (see [`DecodeCache::generation`](crate::DecodeCache::generation)).
    /// The block engine polls this after potentially-writing micro-ops to
    /// catch self-modifying code inside the executing block.
    fn code_generation(&self) -> u64 {
        0
    }
}

/// Execution error raised by [`Core::step`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// Memory system fault.
    Bus(BusError),
    /// The instruction belongs to an extension the core does not implement.
    UnsupportedInsn {
        /// Address of the offending instruction.
        pc: u32,
    },
    /// Unaligned access on a core without unaligned-access support.
    Misaligned {
        /// Faulting data address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
        /// Address of the offending instruction.
        pc: u32,
    },
    /// A hardware loop was set up with an invalid body.
    InvalidHwLoop {
        /// Address of the `lp.setup` instruction.
        pc: u32,
    },
    /// `step` was called on a halted or sleeping core.
    NotRunning,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Bus(e) => write!(f, "bus error: {e}"),
            ExecError::UnsupportedInsn { pc } => {
                write!(f, "unsupported instruction at {pc:#010x}")
            }
            ExecError::Misaligned { addr, size, pc } => write!(
                f,
                "misaligned {size}-byte access at {addr:#010x} (pc {pc:#010x}) without unaligned support"
            ),
            ExecError::InvalidHwLoop { pc } => write!(f, "invalid hardware loop at {pc:#010x}"),
            ExecError::NotRunning => write!(f, "core is not in the running state"),
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Bus(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BusError> for ExecError {
    fn from(e: BusError) -> Self {
        ExecError::Bus(e)
    }
}

/// Core execution state.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CoreState {
    /// Executing instructions.
    #[default]
    Running,
    /// Clock-gated, waiting for an event or barrier release.
    Sleeping,
    /// Stopped by [`Insn::Halt`].
    Halted,
}

/// What happened during one [`Core::step`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// An ordinary instruction retired.
    Executed,
    /// The core executed [`Insn::Halt`] and stopped.
    Halted,
    /// The core executed [`Insn::Wfe`] with no pending event and went to
    /// sleep; the caller (cluster) must wake it when an event arrives.
    Sleeping,
    /// The core arrived at the cluster barrier and went to sleep; the
    /// caller must release it when all participants have arrived.
    BarrierArrived,
    /// The core sent event `id` (see [`Insn::Sev`]); the caller routes it.
    EventSent(u8),
}

/// Why [`Core::exec_block`] stopped executing a micro-op block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockExit {
    /// A non-[`StepOutcome::Executed`] outcome retired (halt, sleep,
    /// barrier, event): the caller applies it exactly as after a step.
    Outcome(StepOutcome),
    /// Control left the straight-line block (taken branch, hardware-loop
    /// back-edge, block end) or the block went stale (self-modifying
    /// code): re-look-up a block at the current `pc` and keep going.
    Redirect,
    /// The caller-supplied batch bound was exceeded: another core may now
    /// be behind this one, so return to the scheduler's scan.
    Bound,
    /// The deadline (cycle budget) was reached before the next micro-op.
    Deadline,
}

/// Per-core activity counters (feed the PULP performance monitoring unit and
/// the power model's activity factors χ).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CoreStats {
    /// Instructions retired.
    pub retired: u64,
    /// Cycles spent stalled on memory (contention, cache misses).
    pub mem_stall_cycles: u64,
    /// Cycles spent in pipeline refill after taken branches.
    pub branch_stall_cycles: u64,
    /// Cycles spent asleep (clock-gated).
    pub sleep_cycles: u64,
    /// Taken branches.
    pub branches_taken: u64,
    /// Data memory accesses performed.
    pub mem_accesses: u64,
}

impl CoreStats {
    /// Cycles in which the core was actively computing (total minus sleep).
    #[must_use]
    pub fn active_cycles(&self, total: u64) -> u64 {
        total.saturating_sub(self.sleep_cycles)
    }
}

/// One retired instruction in an execution trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEntry {
    /// Address the instruction was fetched from.
    pub pc: u32,
    /// The instruction.
    pub insn: Insn,
    /// Core-local time after the instruction retired.
    pub retired_at: u64,
}

/// Summary returned by [`Core::run`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunSummary {
    /// Local time at completion (total cycles since reset).
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Final core state.
    pub state: CoreState,
}

#[derive(Clone, Copy, Debug, Default)]
struct HwLoop {
    start: u32,
    end: u32,
    count: u32,
    active: bool,
}

/// A single-issue in-order core with a local cycle counter.
///
/// See the [crate-level example](crate) for basic usage.
#[derive(Clone, Debug)]
pub struct Core {
    id: usize,
    model: CoreModel,
    regs: [u32; 32],
    pc: u32,
    time: u64,
    state: CoreState,
    hwloops: [HwLoop; 2],
    // Fast-path guard: true iff any hardware loop is active, so the
    // per-instruction loop-back check costs one predictable branch on
    // cores that never set a loop up (M3/M4/baseline).
    hwloops_active: bool,
    event_pending: bool,
    num_cores: u32,
    stats: CoreStats,
    trace: Option<Vec<TraceEntry>>,
    trace_cap: usize,
    tracer: Tracer,
    run_since: u64,
    // Whether Core::run executes through the micro-op block engine
    // (bit-identical to the step loop; see crate::uop).
    microop: bool,
    // Resident block of the micro-op engine: `(entry_pc, block)` of the
    // block the core last replayed, so a replay interrupted by a batch
    // bound resumes without a bus look-up. Revalidated against the bus
    // code generation on every entry; cleared by reset.
    block_ctx: Option<(u32, Arc<Block>)>,
    // Count of `CycleLo` CSR reads. The cycle counter is the one place
    // timing feeds architectural values, so a speculative scheduler that
    // repairs timelines after the fact (ulp-cluster's epoch engine) must
    // know whether a replay observed it.
    cycle_csr_reads: u64,
    // Local time of the first `CycleLo` read since the watch was last
    // armed (`None`: no read yet). Lets the epoch engine bound its exact
    // fallback window at the read itself instead of the end of the
    // replayed window.
    cycle_csr_read_at: Option<u64>,
}

impl Core {
    /// Creates a core with the given cluster index and microarchitecture.
    #[must_use]
    pub fn new(id: usize, model: CoreModel) -> Self {
        Core {
            id,
            model,
            regs: [0; 32],
            pc: 0,
            time: 0,
            state: CoreState::Running,
            hwloops: [HwLoop::default(); 2],
            hwloops_active: false,
            event_pending: false,
            num_cores: 1,
            stats: CoreStats::default(),
            trace: None,
            trace_cap: 0,
            tracer: Tracer::disabled(),
            run_since: 0,
            microop: crate::uop::default_microop(),
            block_ctx: None,
            cycle_csr_reads: 0,
            cycle_csr_read_at: None,
        }
    }

    /// Selects the engine used by [`Core::run`]: `true` (the process-wide
    /// default, see [`crate::uop::set_default_microop`]) executes through
    /// the pre-decoded micro-op block engine, `false` through the classic
    /// per-instruction step loop. Both are bit-identical.
    pub fn set_microop(&mut self, on: bool) {
        self.microop = on;
    }

    /// Attaches a structured event tracer (a disabled tracer detaches).
    /// The tracer records run/sleep/stall intervals; see `ulp-trace`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Starts recording an execution trace of up to `cap` instructions
    /// (older entries are kept; recording stops at the cap).
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = Some(Vec::with_capacity(cap.min(1 << 16)));
        self.trace_cap = cap;
    }

    /// Stops recording and discards the trace.
    pub fn disable_trace(&mut self) {
        self.trace = None;
        self.trace_cap = 0;
    }

    /// The recorded trace (empty when tracing is disabled).
    #[must_use]
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Resets architectural state and starts executing at `entry`.
    pub fn reset(&mut self, entry: u32) {
        self.regs = [0; 32];
        self.pc = entry;
        self.time = 0;
        self.state = CoreState::Running;
        self.hwloops = [HwLoop::default(); 2];
        self.hwloops_active = false;
        self.event_pending = false;
        self.stats = CoreStats::default();
        self.run_since = 0;
        self.block_ctx = None;
        if let Some(trace) = &mut self.trace {
            trace.clear();
        }
    }

    /// Core index within its cluster.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The core's microarchitecture model.
    #[must_use]
    pub fn model(&self) -> &CoreModel {
        &self.model
    }

    /// Reads a register (`r0` always reads 0).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    /// Writes a register (writes to `r0` are ignored).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = value;
        }
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Core-local time in cycles.
    #[must_use]
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Advances the local clock (used by cluster synchronization).
    pub fn advance_time_to(&mut self, t: u64) {
        if t > self.time {
            self.time = t;
            // Before the first retired instruction this is the start-time
            // alignment done by the cluster, not execution.
            if self.stats.retired == 0 {
                self.run_since = t;
            }
        }
    }

    /// Number of `CycleLo` CSR reads so far. The cycle CSR is the only
    /// instruction whose *value* depends on the local clock, so a
    /// speculative scheduler that shifts replayed timelines after the
    /// fact must treat any delta here as a speculation failure.
    #[doc(hidden)]
    #[must_use]
    pub fn cycle_csr_reads(&self) -> u64 {
        self.cycle_csr_reads
    }

    /// Arms the `CycleLo` read-time watch: clears the latched read time
    /// so the next read records the local time it was issued at. The
    /// epoch engine arms this per replay segment and, on a read, bounds
    /// its exact fallback window at the latched time instead of the end
    /// of the replayed window.
    #[doc(hidden)]
    pub fn watch_cycle_csr(&mut self) {
        self.cycle_csr_read_at = None;
    }

    /// Local time of the first `CycleLo` read since
    /// [`Core::watch_cycle_csr`] last armed the watch (`None` if none).
    #[doc(hidden)]
    #[must_use]
    pub fn cycle_csr_read_at(&self) -> Option<u64> {
        self.cycle_csr_read_at
    }

    /// Applies a signed shift to the local clock and the memory-stall
    /// counter. Used by the cluster's epoch engine when it commits a
    /// speculative replay whose exact cross-core stalls differ from the
    /// modelled ones by `delta` cycles: every data stall adds
    /// `start - issue` to both the clock and `mem_stall_cycles`, so one
    /// uniform patch of the accumulated stall error reproduces the
    /// reference state exactly.
    #[doc(hidden)]
    pub fn epoch_time_shift(&mut self, delta: i64) {
        self.time = self
            .time
            .checked_add_signed(delta)
            .expect("epoch shift keeps time non-negative");
        self.stats.mem_stall_cycles = self
            .stats
            .mem_stall_cycles
            .checked_add_signed(delta)
            .expect("epoch shift keeps stall count non-negative");
    }

    /// Execution state.
    #[must_use]
    pub fn state(&self) -> CoreState {
        self.state
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Sets the value returned by the `NumCores` CSR.
    pub fn set_num_cores(&mut self, n: u32) {
        self.num_cores = n;
    }

    /// Latches an event towards this core. If the core is asleep the caller
    /// should follow up with [`Core::wake`].
    pub fn post_event(&mut self) {
        self.event_pending = true;
    }

    /// Whether an event is latched and not yet consumed.
    #[must_use]
    pub fn event_pending(&self) -> bool {
        self.event_pending
    }

    /// Wakes a sleeping core at time `at` (the event-unit release time).
    /// Charges the wakeup latency and accounts slept cycles.
    ///
    /// Does nothing if the core is not sleeping.
    pub fn wake(&mut self, at: u64) {
        if self.state != CoreState::Sleeping {
            return;
        }
        let resume = at.max(self.time) + u64::from(self.model.timing.wakeup);
        self.stats.sleep_cycles += resume.saturating_sub(self.time);
        self.tracer.emit(
            Component::Core(self.id as u8),
            EventKind::CoreSleep,
            self.time,
            resume.saturating_sub(self.time),
        );
        self.time = resume;
        self.run_since = resume;
        self.state = CoreState::Running;
        self.event_pending = false;
    }

    /// Runs until the core halts, sleeps, or `max_cycles` elapses.
    ///
    /// Intended for single-core use over a private bus; cluster execution
    /// drives [`Core::step`] directly so it can interleave cores.
    ///
    /// # Errors
    ///
    /// Propagates any [`ExecError`]; additionally returns
    /// [`ExecError::NotRunning`] if the core sleeps with nobody to wake it.
    pub fn run<B: Bus>(&mut self, bus: &mut B, max_cycles: u64) -> Result<RunSummary, ExecError> {
        if self.microop {
            return self.run_microop(bus, max_cycles);
        }
        let retired_before = self.stats.retired;
        while self.time < max_cycles {
            match self.step(bus)? {
                StepOutcome::Halted => break,
                StepOutcome::Sleeping | StepOutcome::BarrierArrived => {
                    return Err(ExecError::NotRunning)
                }
                StepOutcome::Executed | StepOutcome::EventSent(_) => {}
            }
        }
        crate::perf::add_retired(self.stats.retired - retired_before);
        Ok(RunSummary {
            cycles: self.time,
            retired: self.stats.retired,
            state: self.state,
        })
    }

    /// [`Core::run`] through the micro-op block engine: whole cached basic
    /// blocks execute between bus block look-ups, falling back to a single
    /// reference [`Core::step`] wherever no block is available (undecodable
    /// or unmapped `pc`, bus without a block cache).
    fn run_microop<B: Bus>(
        &mut self,
        bus: &mut B,
        max_cycles: u64,
    ) -> Result<RunSummary, ExecError> {
        let retired_before = self.stats.retired;
        // `run` executes a step iff time < max_cycles, i.e. time is at most
        // max_cycles - 1: that is the block engine's deadline.
        let deadline = max_cycles.saturating_sub(1);
        'outer: while self.time < max_cycles {
            if let Some(exit) = self.exec_resume(bus, deadline, u64::MAX)? {
                match exit {
                    BlockExit::Outcome(StepOutcome::Halted) => break 'outer,
                    BlockExit::Outcome(StepOutcome::Sleeping | StepOutcome::BarrierArrived) => {
                        return Err(ExecError::NotRunning)
                    }
                    BlockExit::Deadline => break 'outer,
                    BlockExit::Outcome(_) | BlockExit::Redirect | BlockExit::Bound => {}
                }
            } else {
                match self.step(bus)? {
                    StepOutcome::Halted => break 'outer,
                    StepOutcome::Sleeping | StepOutcome::BarrierArrived => {
                        return Err(ExecError::NotRunning)
                    }
                    StepOutcome::Executed | StepOutcome::EventSent(_) => {}
                }
            }
        }
        crate::perf::add_retired(self.stats.retired - retired_before);
        Ok(RunSummary {
            cycles: self.time,
            retired: self.stats.retired,
            state: self.state,
        })
    }

    fn read(&self, r: Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    fn write(&mut self, r: Reg, v: u32) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = v;
        }
    }

    fn check_align(&self, addr: u32, size: MemSize) -> Result<u32, ExecError> {
        let bytes = size.bytes();
        // `bytes` is always a power of two, so the mask test is equivalent
        // to divisibility and avoids a runtime modulo on the hot path.
        if addr & (bytes - 1) == 0 {
            Ok(0)
        } else if self.model.features.unaligned {
            Ok(self.model.timing.unaligned_penalty)
        } else {
            Err(ExecError::Misaligned {
                addr,
                size: bytes,
                pc: self.pc,
            })
        }
    }

    fn extend(value: u32, size: MemSize, signed: bool) -> u32 {
        match (size, signed) {
            (MemSize::Byte, true) => value as u8 as i8 as i32 as u32,
            (MemSize::Byte, false) => u32::from(value as u8),
            (MemSize::Half, true) => value as u16 as i16 as i32 as u32,
            (MemSize::Half, false) => u32::from(value as u16),
            (MemSize::Word, _) => value,
        }
    }

    fn require(&self, ok: bool) -> Result<(), ExecError> {
        if ok {
            Ok(())
        } else {
            Err(ExecError::UnsupportedInsn { pc: self.pc })
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on bus faults, unsupported instructions,
    /// misaligned accesses, or if the core is not running.
    pub fn step<B: Bus>(&mut self, bus: &mut B) -> Result<StepOutcome, ExecError> {
        if self.state != CoreState::Running {
            return Err(ExecError::NotRunning);
        }

        let fetched = bus.fetch(self.id, self.time, self.pc)?;
        if fetched.ready_at > self.time {
            self.stats.mem_stall_cycles += fetched.ready_at - self.time;
            self.time = fetched.ready_at;
        }
        let insn = fetched.insn;
        let (cycles, next_pc, outcome) = self.exec_insn(bus, insn)?;
        self.retire(insn, cycles, next_pc, outcome);
        Ok(outcome)
    }

    /// Executes the operate phase of `insn` (the reference engine's single
    /// source of instruction semantics, also reached by [`UopKind::Generic`]
    /// micro-ops). Returns `(cycles, next_pc, outcome)` for [`Core::retire`].
    #[allow(clippy::too_many_lines)]
    fn exec_insn<B: Bus>(
        &mut self,
        bus: &mut B,
        insn: Insn,
    ) -> Result<(u64, u32, StepOutcome), ExecError> {
        use Insn::*;

        let f = self.model.features;
        let t = self.model.timing;

        let mut cycles: u64 = 1;
        let mut next_pc = self.pc.wrapping_add(4);
        let mut outcome = StepOutcome::Executed;

        macro_rules! alu {
            ($d:expr, $v:expr) => {{
                let v = $v;
                self.write($d, v);
            }};
        }

        macro_rules! taken {
            ($target:expr) => {{
                next_pc = $target;
                cycles += u64::from(t.taken_branch);
                self.stats.branches_taken += 1;
                self.stats.branch_stall_cycles += u64::from(t.taken_branch);
            }};
        }

        match insn {
            Add(d, a, b) => alu!(d, self.read(a).wrapping_add(self.read(b))),
            Sub(d, a, b) => alu!(d, self.read(a).wrapping_sub(self.read(b))),
            And(d, a, b) => alu!(d, self.read(a) & self.read(b)),
            Or(d, a, b) => alu!(d, self.read(a) | self.read(b)),
            Xor(d, a, b) => alu!(d, self.read(a) ^ self.read(b)),
            Sll(d, a, b) => alu!(d, self.read(a) << (self.read(b) & 31)),
            Srl(d, a, b) => alu!(d, self.read(a) >> (self.read(b) & 31)),
            Sra(d, a, b) => alu!(d, ((self.read(a) as i32) >> (self.read(b) & 31)) as u32),
            Slt(d, a, b) => alu!(d, u32::from((self.read(a) as i32) < (self.read(b) as i32))),
            Sltu(d, a, b) => alu!(d, u32::from(self.read(a) < self.read(b))),
            Min(d, a, b) => alu!(d, (self.read(a) as i32).min(self.read(b) as i32) as u32),
            Max(d, a, b) => alu!(d, (self.read(a) as i32).max(self.read(b) as i32) as u32),
            Mul(d, a, b) => {
                cycles = u64::from(t.mul);
                alu!(d, self.read(a).wrapping_mul(self.read(b)));
            }
            Div(d, a, b) => {
                self.require(f.div)?;
                cycles = u64::from(t.div);
                let a = self.read(a) as i32;
                let b = self.read(b) as i32;
                alu!(
                    d,
                    if b == 0 {
                        -1i32 as u32
                    } else {
                        a.wrapping_div(b) as u32
                    }
                );
            }
            Divu(d, a, b) => {
                self.require(f.div)?;
                cycles = u64::from(t.div);
                let a = self.read(a);
                let b = self.read(b);
                alu!(d, a.checked_div(b).unwrap_or(u32::MAX));
            }
            Mac(d, a, b) => {
                self.require(f.mac)?;
                cycles = u64::from(t.mac);
                let prod = self.read(a).wrapping_mul(self.read(b));
                alu!(d, self.read(d).wrapping_add(prod));
            }
            Mull {
                rd_hi,
                rd_lo,
                ra,
                rb,
                signed,
            } => {
                self.require(f.mul64)?;
                cycles = u64::from(t.mull);
                let prod = if signed {
                    (i64::from(self.read(ra) as i32) * i64::from(self.read(rb) as i32)) as u64
                } else {
                    u64::from(self.read(ra)) * u64::from(self.read(rb))
                };
                self.write(rd_lo, prod as u32);
                self.write(rd_hi, (prod >> 32) as u32);
            }
            Mlal {
                rd_hi,
                rd_lo,
                ra,
                rb,
                signed,
            } => {
                self.require(f.mul64)?;
                cycles = u64::from(t.mlal);
                let acc = (u64::from(self.read(rd_hi)) << 32) | u64::from(self.read(rd_lo));
                let prod = if signed {
                    (i64::from(self.read(ra) as i32) * i64::from(self.read(rb) as i32)) as u64
                } else {
                    u64::from(self.read(ra)) * u64::from(self.read(rb))
                };
                let sum = acc.wrapping_add(prod);
                self.write(rd_lo, sum as u32);
                self.write(rd_hi, (sum >> 32) as u32);
            }
            SdotV4(d, a, b) => {
                self.require(f.simd_dot)?;
                let (x, y) = (self.read(a), self.read(b));
                let mut acc = self.read(d) as i32;
                for lane in 0..4 {
                    let xa = (x >> (lane * 8)) as u8 as i8 as i32;
                    let yb = (y >> (lane * 8)) as u8 as i8 as i32;
                    acc = acc.wrapping_add(xa.wrapping_mul(yb));
                }
                alu!(d, acc as u32);
            }
            SdotV2(d, a, b) => {
                self.require(f.simd_dot)?;
                let (x, y) = (self.read(a), self.read(b));
                let mut acc = self.read(d) as i32;
                for lane in 0..2 {
                    let xa = (x >> (lane * 16)) as u16 as i16 as i32;
                    let yb = (y >> (lane * 16)) as u16 as i16 as i32;
                    acc = acc.wrapping_add(xa.wrapping_mul(yb));
                }
                alu!(d, acc as u32);
            }
            AddV4(d, a, b) | SubV4(d, a, b) => {
                self.require(f.simd_dot)?;
                let (x, y) = (self.read(a), self.read(b));
                let mut out = 0u32;
                for lane in 0..4 {
                    let xa = (x >> (lane * 8)) as u8;
                    let yb = (y >> (lane * 8)) as u8;
                    let v = if matches!(insn, AddV4(..)) {
                        xa.wrapping_add(yb)
                    } else {
                        xa.wrapping_sub(yb)
                    };
                    out |= u32::from(v) << (lane * 8);
                }
                alu!(d, out);
            }
            AddV2(d, a, b) | SubV2(d, a, b) => {
                self.require(f.simd_dot)?;
                let (x, y) = (self.read(a), self.read(b));
                let mut out = 0u32;
                for lane in 0..2 {
                    let xa = (x >> (lane * 16)) as u16;
                    let yb = (y >> (lane * 16)) as u16;
                    let v = if matches!(insn, AddV2(..)) {
                        xa.wrapping_add(yb)
                    } else {
                        xa.wrapping_sub(yb)
                    };
                    out |= u32::from(v) << (lane * 16);
                }
                alu!(d, out);
            }
            Addi(d, a, i) => alu!(d, self.read(a).wrapping_add(i as i32 as u32)),
            Andi(d, a, i) => alu!(d, self.read(a) & u32::from(i)),
            Ori(d, a, i) => alu!(d, self.read(a) | u32::from(i)),
            Xori(d, a, i) => alu!(d, self.read(a) ^ u32::from(i)),
            Slli(d, a, s) => alu!(d, self.read(a) << (s & 31)),
            Srli(d, a, s) => alu!(d, self.read(a) >> (s & 31)),
            Srai(d, a, s) => alu!(d, ((self.read(a) as i32) >> (s & 31)) as u32),
            Lui(d, imm) => alu!(d, imm << 14),
            Load {
                rd,
                base,
                offset,
                size,
                signed,
            } => {
                let addr = self.read(base).wrapping_add(offset as i32 as u32);
                let penalty = self.check_align(addr, size)?;
                let acc = bus.load(self.id, self.time, addr, size)?;
                cycles = (acc.ready_at - self.time) + u64::from(penalty);
                self.note_mem_stall(acc.ready_at);
                self.write(rd, Self::extend(acc.value, size, signed));
            }
            LoadPi {
                rd,
                base,
                inc,
                size,
                signed,
            } => {
                self.require(f.post_increment)?;
                let addr = self.read(base);
                let penalty = self.check_align(addr, size)?;
                let acc = bus.load(self.id, self.time, addr, size)?;
                cycles = (acc.ready_at - self.time) + u64::from(penalty);
                self.note_mem_stall(acc.ready_at);
                self.write(rd, Self::extend(acc.value, size, signed));
                self.write(base, addr.wrapping_add(inc as i32 as u32));
            }
            Store {
                rs,
                base,
                offset,
                size,
            } => {
                let addr = self.read(base).wrapping_add(offset as i32 as u32);
                let penalty = self.check_align(addr, size)?;
                let done = bus.store(self.id, self.time, addr, size, self.read(rs))?;
                cycles = (done - self.time) + u64::from(penalty);
                self.note_mem_stall(done);
            }
            StorePi {
                rs,
                base,
                inc,
                size,
            } => {
                self.require(f.post_increment)?;
                let addr = self.read(base);
                let penalty = self.check_align(addr, size)?;
                let done = bus.store(self.id, self.time, addr, size, self.read(rs))?;
                cycles = (done - self.time) + u64::from(penalty);
                self.note_mem_stall(done);
                self.write(base, addr.wrapping_add(inc as i32 as u32));
            }
            Tas(rd, ra) => {
                let addr = self.read(ra);
                let penalty = self.check_align(addr, MemSize::Word)?;
                let acc = bus.tas(self.id, self.time, addr)?;
                cycles = (acc.ready_at - self.time) + u64::from(penalty);
                self.note_mem_stall(acc.ready_at);
                self.write(rd, acc.value);
            }
            Beq(a, b, o) => {
                if self.read(a) == self.read(b) {
                    taken!(self.pc.wrapping_add(o as u32));
                }
            }
            Bne(a, b, o) => {
                if self.read(a) != self.read(b) {
                    taken!(self.pc.wrapping_add(o as u32));
                }
            }
            Blt(a, b, o) => {
                if (self.read(a) as i32) < (self.read(b) as i32) {
                    taken!(self.pc.wrapping_add(o as u32));
                }
            }
            Bge(a, b, o) => {
                if (self.read(a) as i32) >= (self.read(b) as i32) {
                    taken!(self.pc.wrapping_add(o as u32));
                }
            }
            Bltu(a, b, o) => {
                if self.read(a) < self.read(b) {
                    taken!(self.pc.wrapping_add(o as u32));
                }
            }
            Bgeu(a, b, o) => {
                if self.read(a) >= self.read(b) {
                    taken!(self.pc.wrapping_add(o as u32));
                }
            }
            Jal(d, o) => {
                self.write(d, self.pc.wrapping_add(4));
                taken!(self.pc.wrapping_add(o as u32));
            }
            Jalr(d, a, i) => {
                let target = self.read(a).wrapping_add(i as i32 as u32) & !3;
                self.write(d, self.pc.wrapping_add(4));
                taken!(target);
            }
            LpSetup {
                idx,
                count,
                body_end,
            } => {
                self.require(f.hw_loops)?;
                if idx > 1 || body_end < 4 {
                    return Err(ExecError::InvalidHwLoop { pc: self.pc });
                }
                let n = self.read(count);
                let start = self.pc.wrapping_add(4);
                let end = self.pc.wrapping_add(body_end as u32);
                if n == 0 {
                    // Skip the body entirely.
                    taken!(end.wrapping_add(4));
                    self.hwloops[idx as usize].active = false;
                } else {
                    self.hwloops[idx as usize] = HwLoop {
                        start,
                        end,
                        count: n,
                        active: true,
                    };
                }
                self.hwloops_active = self.hwloops[0].active || self.hwloops[1].active;
            }
            Csrr(d, csr) => {
                let v = match csr {
                    Csr::CoreId => self.id as u32,
                    Csr::NumCores => self.num_cores,
                    Csr::CycleLo => {
                        self.cycle_csr_reads += 1;
                        if self.cycle_csr_read_at.is_none() {
                            self.cycle_csr_read_at = Some(self.time);
                        }
                        self.time as u32
                    }
                    Csr::InstRetLo => self.stats.retired as u32,
                };
                alu!(d, v);
            }
            Nop => {}
            Halt => {
                self.state = CoreState::Halted;
                outcome = StepOutcome::Halted;
            }
            Wfe => {
                if self.event_pending {
                    self.event_pending = false;
                } else {
                    self.state = CoreState::Sleeping;
                    outcome = StepOutcome::Sleeping;
                }
            }
            Sev(id) => outcome = StepOutcome::EventSent(id),
            Barrier => {
                self.state = CoreState::Sleeping;
                outcome = StepOutcome::BarrierArrived;
            }
        }

        Ok((cycles, next_pc, outcome))
    }

    /// Applies the zero-overhead hardware loop-back to `next_pc`: only when
    /// falling through the last body instruction (a taken branch inside the
    /// body wins). Shared by both retire paths.
    #[inline]
    fn loop_back(&mut self, mut next_pc: u32) -> u32 {
        if self.hwloops_active && next_pc == self.pc.wrapping_add(4) {
            for l in 0..2 {
                let lp = &mut self.hwloops[l];
                if lp.active && self.pc == lp.end {
                    lp.count -= 1;
                    if lp.count > 0 {
                        next_pc = lp.start;
                        break;
                    }
                    // Loop exhausted; an enclosing loop may end at the same
                    // address (inner body is the tail of the outer body), so
                    // keep checking the outer unit.
                    lp.active = false;
                }
            }
            self.hwloops_active = self.hwloops[0].active || self.hwloops[1].active;
        }
        next_pc
    }

    /// Minimal retire for the micro-op hot loop: identical bookkeeping to
    /// [`Core::retire`] for a plain `Executed` outcome with tracing off
    /// (the run-interval tracer only acts on transitions out of Running,
    /// which an `Executed` outcome never is).
    #[inline]
    fn retire_lite(&mut self, cycles: u64, next_pc: u32) {
        let next_pc = self.loop_back(next_pc);
        self.stats.retired += 1;
        self.time += cycles.max(1);
        self.pc = next_pc;
    }

    /// Retires one instruction: hardware loop-back, counters, trace, run
    /// interval bookkeeping, and the `pc` update. Shared verbatim by the
    /// step and micro-op engines so cycle accounting is identical.
    #[inline]
    fn retire(&mut self, insn: Insn, cycles: u64, next_pc: u32, outcome: StepOutcome) {
        let next_pc = self.loop_back(next_pc);
        self.stats.retired += 1;
        self.time += cycles.max(1);
        if let Some(trace) = &mut self.trace {
            if trace.len() < self.trace_cap {
                trace.push(TraceEntry {
                    pc: self.pc,
                    insn,
                    retired_at: self.time,
                });
            }
        }
        // Close the current run interval on any transition out of Running.
        if !matches!(outcome, StepOutcome::Executed | StepOutcome::EventSent(_))
            && self.time > self.run_since
        {
            self.tracer.emit(
                Component::Core(self.id as u8),
                EventKind::CoreRun,
                self.run_since,
                self.time - self.run_since,
            );
        }
        self.pc = next_pc;
    }

    /// Executes micro-ops from `block` (whose entry must be the current
    /// `pc`) until an exit condition, without touching the decoder.
    ///
    /// Exit conditions, checked in scheduler-equivalent order: the local
    /// time exceeding `deadline` before an op (→ [`BlockExit::Deadline`]); a
    /// retired non-`Executed` outcome (→ [`BlockExit::Outcome`]); the local
    /// time exceeding `bound` after an op (→ [`BlockExit::Bound`], the
    /// (time, index) batching cut-off of the turbo scheduler); control
    /// leaving the straight line, the block going stale after a write, or
    /// the block ending (→ [`BlockExit::Redirect`]).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] exactly as [`Core::step`] would for the same
    /// instruction sequence, or [`ExecError::NotRunning`] if the core is
    /// not in the running state.
    pub fn exec_block<B: Bus>(
        &mut self,
        bus: &mut B,
        block: &Block,
        deadline: u64,
        bound: u64,
    ) -> Result<BlockExit, ExecError> {
        self.exec_block_from(bus, block, self.pc, 0, deadline, bound)
    }

    /// [`Core::exec_block`] entered mid-block: `entry_pc` is the block's
    /// entry and `idx` the micro-op index of the current `pc` — how
    /// [`Core::exec_resume`] continues a replay a batch bound interrupted.
    fn exec_block_from<B: Bus>(
        &mut self,
        bus: &mut B,
        block: &Block,
        entry_pc: u32,
        mut idx: usize,
        deadline: u64,
        bound: u64,
    ) -> Result<BlockExit, ExecError> {
        if self.state != CoreState::Running {
            return Err(ExecError::NotRunning);
        }
        loop {
            if self.time > deadline {
                return Ok(BlockExit::Deadline);
            }
            let pc = self.pc;
            // Timing half of the fetch: the I$ model must see every
            // executed instruction exactly once, like the reference fetch.
            let ready = bus.fetch_timing(self.id, self.time, pc);
            if ready > self.time {
                self.stats.mem_stall_cycles += ready - self.time;
                self.time = ready;
            }
            let uop = &block.uops[idx];
            let (cycles, next_pc, outcome, wrote_mem) = self.exec_uop(bus, uop)?;
            if matches!(outcome, StepOutcome::Executed) && self.trace.is_none() {
                // Hot retire: an `Executed` outcome never transitions out
                // of Running, so with tracing off the full retire path
                // degenerates to exactly this bookkeeping.
                self.retire_lite(cycles, next_pc);
            } else {
                self.retire(uop.insn, cycles, next_pc, outcome);
                if !matches!(outcome, StepOutcome::Executed) {
                    return Ok(BlockExit::Outcome(outcome));
                }
            }
            if self.time > bound {
                return Ok(BlockExit::Bound);
            }
            // A write may have rewritten code — including the rest of this
            // very block. Stale means: re-look-up (and rebuild) at `pc`.
            if wrote_mem && bus.code_generation() != block.gen {
                return Ok(BlockExit::Redirect);
            }
            if self.pc == pc.wrapping_add(4) {
                idx += 1;
                if idx == block.uops.len() {
                    return Ok(BlockExit::Redirect);
                }
            } else {
                // Taken branch or hardware-loop back-edge. A target inside
                // this very block — a tight loop, the overwhelmingly common
                // case — keeps replaying without a fresh look-up; nothing
                // was written since the entry validation, so the cached
                // translation is still exact. Anything else redirects.
                let rel = self.pc.wrapping_sub(entry_pc);
                if rel & 3 == 0 && ((rel >> 2) as usize) < block.uops.len() {
                    idx = (rel >> 2) as usize;
                } else {
                    return Ok(BlockExit::Redirect);
                }
            }
        }
    }

    /// Runs the micro-op engine at the current `pc`, keeping the block
    /// resident in the core between calls: when `pc` still falls inside
    /// the resident block and the bus code generation is unchanged, the
    /// replay resumes in place — the common case after a batch-bound
    /// interruption — otherwise a fresh block is looked up through the
    /// bus. Returns `Ok(None)` when no block covers `pc` (undecodable or
    /// unmapped word, bus without a block cache): the caller falls back
    /// to one reference [`Core::step`].
    ///
    /// The resident block belongs to the bus the core last ran on;
    /// [`Core::reset`] drops it, so the usual reset-then-run flow is safe
    /// across different memory images.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Core::exec_block`].
    pub fn exec_resume<B: Bus>(
        &mut self,
        bus: &mut B,
        deadline: u64,
        bound: u64,
    ) -> Result<Option<BlockExit>, ExecError> {
        let resumable = self.block_ctx.as_ref().is_some_and(|(entry, block)| {
            let rel = self.pc.wrapping_sub(*entry);
            rel & 3 == 0
                && ((rel >> 2) as usize) < block.uops.len()
                && block.gen == bus.code_generation()
        });
        if !resumable {
            let model = self.model;
            match bus.microop_block(self.id, self.pc, &model) {
                Some(block) => self.block_ctx = Some((self.pc, block)),
                None => {
                    self.block_ctx = None;
                    return Ok(None);
                }
            }
        }
        loop {
            // Move the block out for the replay (the borrow checker cannot
            // see that exec_block_from never touches block_ctx) and restore
            // it after: staleness is re-checked on the next entry.
            let (entry_pc, block) = self.block_ctx.take().expect("resident block just set");
            let idx = (self.pc.wrapping_sub(entry_pc) >> 2) as usize;
            let exit = self.exec_block_from(bus, &block, entry_pc, idx, deadline, bound);
            self.block_ctx = Some((entry_pc, block));
            match exit {
                // Chain straight into the next block under the same bounds:
                // a redirect always leaves the resident translation (an
                // in-block branch target resumes inside `exec_block_from`,
                // and a stale generation needs a rebuild either way), so
                // the resumability re-check is pure overhead — look up at
                // the new pc directly.
                Ok(BlockExit::Redirect) => {
                    let model = self.model;
                    match bus.microop_block(self.id, self.pc, &model) {
                        Some(block) => self.block_ctx = Some((self.pc, block)),
                        None => {
                            self.block_ctx = None;
                            return Ok(None);
                        }
                    }
                }
                other => return other.map(Some),
            }
        }
    }

    /// Executes the operate phase of one micro-op. Returns
    /// `(cycles, next_pc, outcome, wrote_mem)`; `wrote_mem` flags ops that
    /// may have written memory (stores, [`UopKind::Generic`]) for the
    /// self-modifying-code staleness check.
    #[inline]
    #[allow(clippy::too_many_lines)]
    fn exec_uop<B: Bus>(
        &mut self,
        bus: &mut B,
        uop: &MicroOp,
    ) -> Result<(u64, u32, StepOutcome, bool), ExecError> {
        use MemSize::{Byte, Half, Word};
        use UopKind as K;

        let mut cycles: u64 = 1;
        let mut next_pc = self.pc.wrapping_add(4);
        let mut wrote_mem = false;

        macro_rules! taken {
            ($target:expr) => {{
                next_pc = $target;
                cycles += u64::from(uop.aux);
                self.stats.branches_taken += 1;
                self.stats.branch_stall_cycles += u64::from(uop.aux);
            }};
        }
        macro_rules! branch {
            ($cond:expr) => {{
                if $cond {
                    taken!(self.pc.wrapping_add(uop.imm as u32));
                }
            }};
        }

        match uop.kind {
            K::Add => self.write_idx(
                uop.rd,
                self.read_idx(uop.ra).wrapping_add(self.read_idx(uop.rb)),
            ),
            K::Sub => self.write_idx(
                uop.rd,
                self.read_idx(uop.ra).wrapping_sub(self.read_idx(uop.rb)),
            ),
            K::And => self.write_idx(uop.rd, self.read_idx(uop.ra) & self.read_idx(uop.rb)),
            K::Or => self.write_idx(uop.rd, self.read_idx(uop.ra) | self.read_idx(uop.rb)),
            K::Xor => self.write_idx(uop.rd, self.read_idx(uop.ra) ^ self.read_idx(uop.rb)),
            K::Sll => self.write_idx(
                uop.rd,
                self.read_idx(uop.ra) << (self.read_idx(uop.rb) & 31),
            ),
            K::Srl => self.write_idx(
                uop.rd,
                self.read_idx(uop.ra) >> (self.read_idx(uop.rb) & 31),
            ),
            K::Sra => self.write_idx(
                uop.rd,
                ((self.read_idx(uop.ra) as i32) >> (self.read_idx(uop.rb) & 31)) as u32,
            ),
            K::Slt => self.write_idx(
                uop.rd,
                u32::from((self.read_idx(uop.ra) as i32) < (self.read_idx(uop.rb) as i32)),
            ),
            K::Sltu => self.write_idx(
                uop.rd,
                u32::from(self.read_idx(uop.ra) < self.read_idx(uop.rb)),
            ),
            K::Min => self.write_idx(
                uop.rd,
                (self.read_idx(uop.ra) as i32).min(self.read_idx(uop.rb) as i32) as u32,
            ),
            K::Max => self.write_idx(
                uop.rd,
                (self.read_idx(uop.ra) as i32).max(self.read_idx(uop.rb) as i32) as u32,
            ),
            K::Mul => {
                cycles = u64::from(uop.aux);
                self.write_idx(
                    uop.rd,
                    self.read_idx(uop.ra).wrapping_mul(self.read_idx(uop.rb)),
                );
            }
            K::Mac => {
                cycles = u64::from(uop.aux);
                let prod = self.read_idx(uop.ra).wrapping_mul(self.read_idx(uop.rb));
                self.write_idx(uop.rd, self.read_idx(uop.rd).wrapping_add(prod));
            }
            K::Addi => self.write_idx(uop.rd, self.read_idx(uop.ra).wrapping_add(uop.imm as u32)),
            K::Andi => self.write_idx(uop.rd, self.read_idx(uop.ra) & (uop.imm as u32)),
            K::Ori => self.write_idx(uop.rd, self.read_idx(uop.ra) | (uop.imm as u32)),
            K::Xori => self.write_idx(uop.rd, self.read_idx(uop.ra) ^ (uop.imm as u32)),
            K::Slli => self.write_idx(uop.rd, self.read_idx(uop.ra) << (uop.imm as u32)),
            K::Srli => self.write_idx(uop.rd, self.read_idx(uop.ra) >> (uop.imm as u32)),
            K::Srai => self.write_idx(
                uop.rd,
                ((self.read_idx(uop.ra) as i32) >> (uop.imm as u32)) as u32,
            ),
            K::Lui => self.write_idx(uop.rd, uop.imm as u32),
            K::SdotV4 => {
                let (x, y) = (self.read_idx(uop.ra), self.read_idx(uop.rb));
                let mut acc = self.read_idx(uop.rd) as i32;
                for lane in 0..4 {
                    let xa = (x >> (lane * 8)) as u8 as i8 as i32;
                    let yb = (y >> (lane * 8)) as u8 as i8 as i32;
                    acc = acc.wrapping_add(xa.wrapping_mul(yb));
                }
                self.write_idx(uop.rd, acc as u32);
            }
            K::SdotV2 => {
                let (x, y) = (self.read_idx(uop.ra), self.read_idx(uop.rb));
                let mut acc = self.read_idx(uop.rd) as i32;
                for lane in 0..2 {
                    let xa = (x >> (lane * 16)) as u16 as i16 as i32;
                    let yb = (y >> (lane * 16)) as u16 as i16 as i32;
                    acc = acc.wrapping_add(xa.wrapping_mul(yb));
                }
                self.write_idx(uop.rd, acc as u32);
            }
            K::LdW => cycles = self.uop_load(bus, uop, Word, true, false)?,
            K::LdH => cycles = self.uop_load(bus, uop, Half, true, false)?,
            K::LdHu => cycles = self.uop_load(bus, uop, Half, false, false)?,
            K::LdB => cycles = self.uop_load(bus, uop, Byte, true, false)?,
            K::LdBu => cycles = self.uop_load(bus, uop, Byte, false, false)?,
            K::LdPiW => cycles = self.uop_load(bus, uop, Word, true, true)?,
            K::LdPiH => cycles = self.uop_load(bus, uop, Half, true, true)?,
            K::LdPiHu => cycles = self.uop_load(bus, uop, Half, false, true)?,
            K::LdPiB => cycles = self.uop_load(bus, uop, Byte, true, true)?,
            K::LdPiBu => cycles = self.uop_load(bus, uop, Byte, false, true)?,
            K::StW => {
                wrote_mem = true;
                cycles = self.uop_store(bus, uop, Word, false)?;
            }
            K::StH => {
                wrote_mem = true;
                cycles = self.uop_store(bus, uop, Half, false)?;
            }
            K::StB => {
                wrote_mem = true;
                cycles = self.uop_store(bus, uop, Byte, false)?;
            }
            K::StPiW => {
                wrote_mem = true;
                cycles = self.uop_store(bus, uop, Word, true)?;
            }
            K::StPiH => {
                wrote_mem = true;
                cycles = self.uop_store(bus, uop, Half, true)?;
            }
            K::StPiB => {
                wrote_mem = true;
                cycles = self.uop_store(bus, uop, Byte, true)?;
            }
            K::Beq => branch!(self.read_idx(uop.ra) == self.read_idx(uop.rb)),
            K::Bne => branch!(self.read_idx(uop.ra) != self.read_idx(uop.rb)),
            K::Blt => branch!((self.read_idx(uop.ra) as i32) < (self.read_idx(uop.rb) as i32)),
            K::Bge => branch!((self.read_idx(uop.ra) as i32) >= (self.read_idx(uop.rb) as i32)),
            K::Bltu => branch!(self.read_idx(uop.ra) < self.read_idx(uop.rb)),
            K::Bgeu => branch!(self.read_idx(uop.ra) >= self.read_idx(uop.rb)),
            K::Jal => {
                self.write_idx(uop.rd, self.pc.wrapping_add(4));
                taken!(self.pc.wrapping_add(uop.imm as u32));
            }
            K::Jalr => {
                let target = self.read_idx(uop.ra).wrapping_add(uop.imm as u32) & !3;
                self.write_idx(uop.rd, self.pc.wrapping_add(4));
                taken!(target);
            }
            K::Nop => {}
            K::Generic => {
                // Cold path: the reference operate phase (identical
                // semantics, errors and timing by construction). Generic
                // covers Tas and MMIO-triggering stores, hence wrote_mem.
                let (c, n, o) = self.exec_insn(bus, uop.insn)?;
                return Ok((c, n, o, true));
            }
        }
        Ok((cycles, next_pc, StepOutcome::Executed, wrote_mem))
    }

    /// Load executor shared by the plain and post-incrementing micro-ops.
    #[inline]
    fn uop_load<B: Bus>(
        &mut self,
        bus: &mut B,
        uop: &MicroOp,
        size: MemSize,
        signed: bool,
        post_inc: bool,
    ) -> Result<u64, ExecError> {
        let base = self.read_idx(uop.ra);
        let addr = if post_inc {
            base
        } else {
            base.wrapping_add(uop.imm as u32)
        };
        let penalty = self.uop_align(addr, size, uop.aux)?;
        let acc = bus.load(self.id, self.time, addr, size)?;
        let cycles = (acc.ready_at - self.time) + u64::from(penalty);
        self.note_mem_stall(acc.ready_at);
        self.write_idx(uop.rd, Self::extend(acc.value, size, signed));
        if post_inc {
            self.write_idx(uop.ra, addr.wrapping_add(uop.imm as u32));
        }
        Ok(cycles)
    }

    /// Store executor shared by the plain and post-incrementing micro-ops
    /// (the source register rides in the `rd` field).
    #[inline]
    fn uop_store<B: Bus>(
        &mut self,
        bus: &mut B,
        uop: &MicroOp,
        size: MemSize,
        post_inc: bool,
    ) -> Result<u64, ExecError> {
        let base = self.read_idx(uop.ra);
        let addr = if post_inc {
            base
        } else {
            base.wrapping_add(uop.imm as u32)
        };
        let penalty = self.uop_align(addr, size, uop.aux)?;
        let done = bus.store(self.id, self.time, addr, size, self.read_idx(uop.rd))?;
        let cycles = (done - self.time) + u64::from(penalty);
        self.note_mem_stall(done);
        if post_inc {
            self.write_idx(uop.ra, addr.wrapping_add(uop.imm as u32));
        }
        Ok(cycles)
    }

    /// [`Core::check_align`] with the policy pre-resolved into the uop's
    /// `aux` field: 0 extra cycles when aligned, `aux` cycles when the core
    /// tolerates misalignment, a fault when `aux` is the sentinel.
    #[inline]
    fn uop_align(&self, addr: u32, size: MemSize, aux: u32) -> Result<u32, ExecError> {
        let bytes = size.bytes();
        if addr & (bytes - 1) == 0 {
            Ok(0)
        } else if aux != u32::MAX {
            Ok(aux)
        } else {
            Err(ExecError::Misaligned {
                addr,
                size: bytes,
                pc: self.pc,
            })
        }
    }

    #[inline]
    fn read_idx(&self, r: u8) -> u32 {
        // Translation only emits indices < 32; the mask proves it to the
        // bounds checker so the hot loop carries no panic branch.
        self.regs[usize::from(r & 31)]
    }

    #[inline]
    fn write_idx(&mut self, r: u8, v: u32) {
        if r != 0 {
            self.regs[usize::from(r & 31)] = v;
        }
    }

    fn note_mem_stall(&mut self, ready_at: u64) {
        self.stats.mem_accesses += 1;
        // A single-cycle access (ready_at == now + 1) is a hit with no stall.
        let stall = ready_at.saturating_sub(self.time + 1);
        self.stats.mem_stall_cycles += stall;
        if stall > 0 {
            self.tracer.emit(
                Component::Core(self.id as u8),
                EventKind::CoreMemStall,
                self.time + 1,
                stall,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::mem::FlatMemory;
    use crate::reg::named::*;

    fn run_prog(model: CoreModel, build: impl FnOnce(&mut Asm)) -> (Core, FlatMemory) {
        let mut a = Asm::new();
        build(&mut a);
        a.halt();
        let prog = a.finish().expect("assembles");
        let mut mem = FlatMemory::new(0, 64 * 1024);
        mem.load_program(&prog, 0).expect("fits");
        let mut core = Core::new(0, model);
        core.reset(0);
        core.run(&mut mem, 10_000_000).expect("runs");
        (core, mem)
    }

    #[test]
    fn arithmetic_basics() {
        let (core, _) = run_prog(CoreModel::risc_baseline(), |a| {
            a.li(R1, 7);
            a.li(R2, -3);
            a.add(R3, R1, R2);
            a.sub(R4, R1, R2);
            a.mul(R5, R1, R2);
            a.insn(Insn::Slt(R6, R2, R1));
        });
        assert_eq!(core.reg(R3), 4);
        assert_eq!(core.reg(R4), 10);
        assert_eq!(core.reg(R5) as i32, -21);
        assert_eq!(core.reg(R6), 1);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (core, _) = run_prog(CoreModel::risc_baseline(), |a| {
            a.li(R1, 42);
            a.add(R0, R1, R1);
        });
        assert_eq!(core.reg(R0), 0);
    }

    #[test]
    fn mac_accumulates() {
        let (core, _) = run_prog(CoreModel::or10n(), |a| {
            a.li(R1, 5);
            a.li(R2, 6);
            a.li(R3, 100);
            a.insn(Insn::Mac(R3, R1, R2));
        });
        assert_eq!(core.reg(R3), 130);
    }

    #[test]
    fn mac_unsupported_on_baseline() {
        let mut a = Asm::new();
        a.insn(Insn::Mac(R3, R1, R2));
        a.halt();
        let prog = a.finish().unwrap();
        let mut mem = FlatMemory::new(0, 4096);
        mem.load_program(&prog, 0).unwrap();
        let mut core = Core::new(0, CoreModel::risc_baseline());
        core.reset(0);
        assert!(matches!(
            core.run(&mut mem, 1000),
            Err(ExecError::UnsupportedInsn { pc: 0 })
        ));
    }

    #[test]
    fn sdotv4_dot_product() {
        // a = [1, 2, 3, 4], b = [5, 6, 7, -8] => 1*5+2*6+3*7+4*(-8) = 6
        let (core, _) = run_prog(CoreModel::or10n(), |a| {
            a.li(R1, 0x0403_0201);
            a.li(R2, 0xF807_0605u32 as i32);
            a.li(R3, 0);
            a.insn(Insn::SdotV4(R3, R1, R2));
        });
        assert_eq!(core.reg(R3) as i32, 6);
    }

    #[test]
    fn sdotv2_dot_product() {
        // a = [100, -2], b = [30, 1000] => 3000 - 2000 = 1000
        let (core, _) = run_prog(CoreModel::or10n(), |a| {
            a.li(R1, ((-2i32 as u32) << 16 | 100) as i32);
            a.li(R2, (1000u32 << 16 | 30) as i32);
            a.li(R3, 0);
            a.insn(Insn::SdotV2(R3, R1, R2));
        });
        assert_eq!(core.reg(R3) as i32, 1000);
    }

    #[test]
    fn mull_mlal_64bit() {
        let (core, _) = run_prog(CoreModel::cortex_m4(), |a| {
            a.li(R1, 100_000);
            a.li(R2, 100_000);
            a.insn(Insn::Mull {
                rd_hi: R4,
                rd_lo: R3,
                ra: R1,
                rb: R2,
                signed: true,
            });
            a.insn(Insn::Mlal {
                rd_hi: R4,
                rd_lo: R3,
                ra: R1,
                rb: R2,
                signed: true,
            });
        });
        let acc = (u64::from(core.reg(R4)) << 32) | u64::from(core.reg(R3));
        assert_eq!(acc, 2 * 100_000u64 * 100_000u64);
    }

    #[test]
    fn mull_signed_negative() {
        let (core, _) = run_prog(CoreModel::cortex_m4(), |a| {
            a.li(R1, -3);
            a.li(R2, 7);
            a.insn(Insn::Mull {
                rd_hi: R4,
                rd_lo: R3,
                ra: R1,
                rb: R2,
                signed: true,
            });
        });
        let acc = ((u64::from(core.reg(R4)) << 32) | u64::from(core.reg(R3))) as i64;
        assert_eq!(acc, -21);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let (core, mem) = run_prog(CoreModel::risc_baseline(), |a| {
            a.li(R1, 0x1000);
            a.li(R2, -123);
            a.insn(Insn::Store {
                rs: R2,
                base: R1,
                offset: 0,
                size: MemSize::Word,
            });
            a.insn(Insn::Load {
                rd: R3,
                base: R1,
                offset: 0,
                size: MemSize::Word,
                signed: true,
            });
            a.insn(Insn::Load {
                rd: R4,
                base: R1,
                offset: 0,
                size: MemSize::Byte,
                signed: true,
            });
            a.insn(Insn::Load {
                rd: R5,
                base: R1,
                offset: 0,
                size: MemSize::Byte,
                signed: false,
            });
            a.insn(Insn::Load {
                rd: R6,
                base: R1,
                offset: 0,
                size: MemSize::Half,
                signed: true,
            });
        });
        assert_eq!(core.reg(R3) as i32, -123);
        assert_eq!(core.reg(R4) as i32, i32::from(-123i8));
        assert_eq!(core.reg(R5), u32::from((-123i8) as u8));
        assert_eq!(core.reg(R6) as i32, -123);
        assert_eq!(mem.read_u32(0x1000).unwrap(), -123i32 as u32);
    }

    #[test]
    fn post_increment_load_advances_base() {
        let (core, _) = run_prog(CoreModel::cortex_m4(), |a| {
            a.li(R1, 0x1000);
            a.li(R2, 7);
            a.insn(Insn::Store {
                rs: R2,
                base: R1,
                offset: 0,
                size: MemSize::Word,
            });
            a.insn(Insn::LoadPi {
                rd: R3,
                base: R1,
                inc: 4,
                size: MemSize::Word,
                signed: true,
            });
        });
        assert_eq!(core.reg(R3), 7);
        assert_eq!(core.reg(R1), 0x1004);
    }

    #[test]
    fn misaligned_faults_without_unaligned_feature() {
        let mut a = Asm::new();
        a.li(R1, 0x1001);
        a.insn(Insn::Load {
            rd: R2,
            base: R1,
            offset: 0,
            size: MemSize::Word,
            signed: true,
        });
        a.halt();
        let prog = a.finish().unwrap();
        let mut mem = FlatMemory::new(0, 8192);
        mem.load_program(&prog, 0).unwrap();
        let mut core = Core::new(0, CoreModel::risc_baseline());
        core.reset(0);
        assert!(matches!(
            core.run(&mut mem, 1000),
            Err(ExecError::Misaligned { .. })
        ));
    }

    #[test]
    fn misaligned_allowed_with_penalty_on_or10n() {
        let (core, _) = run_prog(CoreModel::or10n(), |a| {
            a.li(R1, 0x1001);
            a.li(R2, 0x0403_0201);
            a.insn(Insn::Store {
                rs: R2,
                base: R1,
                offset: 0,
                size: MemSize::Word,
            });
            a.insn(Insn::Load {
                rd: R3,
                base: R1,
                offset: 0,
                size: MemSize::Word,
                signed: true,
            });
        });
        assert_eq!(core.reg(R3), 0x0403_0201);
    }

    #[test]
    fn hw_loop_executes_exact_count() {
        let (core, _) = run_prog(CoreModel::or10n(), |a| {
            a.li(R1, 10); // count
            a.li(R2, 0); // accumulator
            a.hw_loop(0, R1, |a| {
                a.addi(R2, R2, 1);
                a.addi(R3, R3, 2);
            });
        });
        assert_eq!(core.reg(R2), 10);
        assert_eq!(core.reg(R3), 20);
    }

    #[test]
    fn hw_loop_zero_count_skips_body() {
        let (core, _) = run_prog(CoreModel::or10n(), |a| {
            a.li(R1, 0);
            a.li(R2, 0);
            a.hw_loop(0, R1, |a| {
                a.addi(R2, R2, 1);
                a.nop();
            });
            a.addi(R4, R4, 9); // must still execute
        });
        assert_eq!(core.reg(R2), 0);
        assert_eq!(core.reg(R4), 9);
    }

    #[test]
    fn nested_hw_loops() {
        let (core, _) = run_prog(CoreModel::or10n(), |a| {
            a.li(R1, 3); // outer count
            a.li(R2, 4); // inner count
            a.li(R3, 0);
            a.hw_loop(1, R1, |a| {
                a.nop();
                a.hw_loop(0, R2, |a| {
                    a.addi(R3, R3, 1);
                    a.nop();
                });
            });
        });
        assert_eq!(core.reg(R3), 12);
    }

    #[test]
    fn hw_loop_is_zero_overhead_vs_branch_loop() {
        // Same 10-iteration loop body; the branch version pays the
        // taken-branch penalty per iteration, the HW loop does not.
        let (hw, _) = run_prog(CoreModel::or10n(), |a| {
            a.li(R1, 10);
            a.hw_loop(0, R1, |a| {
                a.addi(R2, R2, 1);
                a.nop();
            });
        });
        let (sw, _) = run_prog(CoreModel::or10n(), |a| {
            a.li(R1, 10);
            let top = a.new_label();
            a.bind(top);
            a.addi(R2, R2, 1);
            a.addi(R1, R1, -1);
            a.bne(R1, R0, top);
        });
        assert_eq!(hw.reg(R2), 10);
        assert_eq!(sw.reg(R2), 10);
        assert!(
            hw.time() < sw.time(),
            "hw loop {} should beat sw loop {}",
            hw.time(),
            sw.time()
        );
    }

    #[test]
    fn branch_taken_costs_more_than_not_taken() {
        let (taken, _) = run_prog(CoreModel::risc_baseline(), |a| {
            let l = a.new_label();
            a.beq(R0, R0, l);
            a.bind(l);
            a.nop();
        });
        let (not_taken, _) = run_prog(CoreModel::risc_baseline(), |a| {
            let l = a.new_label();
            a.bne(R0, R0, l);
            a.bind(l);
            a.nop();
        });
        assert!(taken.time() > not_taken.time());
        assert_eq!(taken.stats().branches_taken, 1);
        assert_eq!(not_taken.stats().branches_taken, 0);
    }

    #[test]
    fn jal_jalr_call_and_return() {
        let (core, _) = run_prog(CoreModel::risc_baseline(), |a| {
            let func = a.new_label();
            let after = a.new_label();
            a.jal_to(R31, func);
            a.li(R2, 1); // executed after return
            a.jmp(after);
            a.bind(func);
            a.li(R1, 99);
            a.insn(Insn::Jalr(R0, R31, 0));
            a.bind(after);
        });
        assert_eq!(core.reg(R1), 99);
        assert_eq!(core.reg(R2), 1);
    }

    #[test]
    fn csr_reads() {
        let mut a = Asm::new();
        a.insn(Insn::Csrr(R1, Csr::CoreId));
        a.insn(Insn::Csrr(R2, Csr::NumCores));
        a.halt();
        let prog = a.finish().unwrap();
        let mut mem = FlatMemory::new(0, 4096);
        mem.load_program(&prog, 0).unwrap();
        let mut core = Core::new(3, CoreModel::or10n());
        core.set_num_cores(4);
        core.reset(0);
        core.run(&mut mem, 1000).unwrap();
        assert_eq!(core.reg(R1), 3);
        assert_eq!(core.reg(R2), 4);
    }

    #[test]
    fn wfe_with_pending_event_does_not_sleep() {
        let mut a = Asm::new();
        a.wfe();
        a.li(R1, 5);
        a.halt();
        let prog = a.finish().unwrap();
        let mut mem = FlatMemory::new(0, 4096);
        mem.load_program(&prog, 0).unwrap();
        let mut core = Core::new(0, CoreModel::or10n());
        core.reset(0);
        core.post_event();
        core.run(&mut mem, 1000).unwrap();
        assert_eq!(core.reg(R1), 5);
    }

    #[test]
    fn wfe_without_event_sleeps_and_wake_resumes() {
        let mut a = Asm::new();
        a.wfe();
        a.li(R1, 5);
        a.halt();
        let prog = a.finish().unwrap();
        let mut mem = FlatMemory::new(0, 4096);
        mem.load_program(&prog, 0).unwrap();
        let mut core = Core::new(0, CoreModel::or10n());
        core.reset(0);
        assert!(matches!(core.step(&mut mem), Ok(StepOutcome::Sleeping)));
        assert_eq!(core.state(), CoreState::Sleeping);
        core.wake(100);
        assert_eq!(core.state(), CoreState::Running);
        assert!(core.time() >= 100);
        assert!(core.stats().sleep_cycles > 0);
        core.run(&mut mem, 10_000).unwrap();
        assert_eq!(core.reg(R1), 5);
    }

    #[test]
    fn tas_returns_old_value_and_sets() {
        let (core, mem) = run_prog(CoreModel::or10n(), |a| {
            a.li(R1, 0x2000);
            a.insn(Insn::Tas(R2, R1)); // old = 0
            a.insn(Insn::Tas(R3, R1)); // old = 1
        });
        assert_eq!(core.reg(R2), 0);
        assert_eq!(core.reg(R3), 1);
        assert_eq!(mem.read_u32(0x2000).unwrap(), 1);
    }

    #[test]
    fn div_by_zero_semantics() {
        let (core, _) = run_prog(CoreModel::cortex_m4(), |a| {
            a.li(R1, 17);
            a.insn(Insn::Div(R2, R1, R0));
            a.insn(Insn::Divu(R3, R1, R0));
            a.li(R4, 5);
            a.insn(Insn::Div(R5, R1, R4));
        });
        assert_eq!(core.reg(R2), u32::MAX);
        assert_eq!(core.reg(R3), u32::MAX);
        assert_eq!(core.reg(R5), 3);
    }

    #[test]
    fn m3_mac_slower_than_m4() {
        let build = |a: &mut Asm| {
            a.li(R1, 3);
            a.li(R2, 4);
            for _ in 0..16 {
                a.insn(Insn::Mac(R3, R1, R2));
            }
        };
        let (m3, _) = run_prog(CoreModel::cortex_m3(), build);
        let (m4, _) = run_prog(CoreModel::cortex_m4(), build);
        assert_eq!(m3.reg(R3), m4.reg(R3));
        assert!(m3.time() > m4.time());
    }

    #[test]
    fn trace_records_retired_instructions() {
        let mut a = Asm::new();
        a.li(R1, 2);
        a.add(R2, R1, R1);
        a.halt();
        let prog = a.finish().unwrap();
        let mut mem = FlatMemory::new(0, 4096);
        mem.load_program(&prog, 0).unwrap();
        let mut core = Core::new(0, CoreModel::or10n());
        core.enable_trace(16);
        core.reset(0);
        core.run(&mut mem, 1000).unwrap();
        let t = core.trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].pc, 0);
        assert_eq!(t[1].insn, Insn::Add(R2, R1, R1));
        assert!(t[2].retired_at >= t[1].retired_at);
        // The cap is honoured.
        let mut capped = Core::new(0, CoreModel::or10n());
        capped.enable_trace(2);
        capped.reset(0);
        capped.run(&mut mem, 1000).unwrap();
        assert_eq!(capped.trace().len(), 2);
        capped.disable_trace();
        assert!(capped.trace().is_empty());
    }

    #[test]
    fn retired_counts_instructions() {
        let (core, _) = run_prog(CoreModel::risc_baseline(), |a| {
            a.li(R1, 3); // may be 1-2 insns
            a.nop();
            a.nop();
        });
        // li(3) = 1 insn; + 2 nops + halt = 4.
        assert_eq!(core.stats().retired, 4);
    }
}
