//! Process-wide simulation performance accounting.
//!
//! The simulator's wall-clock tooling (`simperf`, `het-sim --perf`) reports
//! *simulated MIPS*: retired instructions per host second. Rather than
//! instrument the interpreter hot loop, every run loop adds its final
//! retired count here once at completion — [`Core::run`](crate::Core::run)
//! for flat single-core runs, `Cluster::run_until_halt` (in `ulp-cluster`)
//! for cluster runs. The counter is atomic so parallel sweeps (`ulp-par`)
//! from several worker threads accumulate correctly.

use std::sync::atomic::{AtomicU64, Ordering};

static RETIRED: AtomicU64 = AtomicU64::new(0);

/// Total instructions retired by every completed simulation run in this
/// process so far. Take a delta around a workload to meter it.
#[must_use]
pub fn retired_total() -> u64 {
    RETIRED.load(Ordering::Relaxed)
}

/// Credits `n` retired instructions to the process-wide total. Called by
/// run loops at completion; not intended for per-instruction use.
pub fn add_retired(n: u64) {
    RETIRED.fetch_add(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_deltas() {
        let before = retired_total();
        add_retired(17);
        add_retired(3);
        assert!(retired_total() >= before + 20);
    }
}
