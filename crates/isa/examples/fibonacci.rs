//! Standalone `ulp-isa` usage: assemble a Fibonacci routine from text,
//! run it on two different core models, and print the cycle difference.
//!
//! ```sh
//! cargo run -p ulp-isa --example fibonacci
//! ```

use ulp_isa::parse_program;
use ulp_isa::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = parse_program(
        "
        # r3 = fib(r2) iteratively; r4/r5 are the rolling pair
            addi r4, r0, 0
            addi r5, r0, 1
            beq  r2, r0, done
        loop:
            add  r6, r4, r5
            add  r4, r5, r0
            add  r5, r6, r0
            addi r2, r2, -1
            bne  r2, r0, loop
        done:
            add  r3, r4, r0
            halt
        ",
    )?;

    for model in [
        CoreModel::risc_baseline(),
        CoreModel::cortex_m4(),
        CoreModel::or10n(),
    ] {
        let mut mem = FlatMemory::new(0, 4096);
        mem.load_program(&prog, 0)?;
        let mut core = Core::new(0, model);
        core.reset(0);
        core.set_reg(R2, 40);
        let run = core.run(&mut mem, 100_000)?;
        println!(
            "{:<14} fib(40) = {:>10}  in {:>4} cycles ({} instructions)",
            model.name,
            core.reg(R3),
            run.cycles,
            run.retired
        );
    }
    Ok(())
}
