//! Latency, throughput, fairness, and degradation accounting of a serve
//! run.
//!
//! Percentiles use the nearest-rank method on the exact latency samples
//! (no buckets, no interpolation), so a report is a pure function of the
//! completion set and re-renders byte-identically.
//!
//! Every request leaves exactly one [`RequestOutcome`] behind, and the
//! aggregated counters — including the per-tenant×deadline-class
//! [`SloLedger`] — are required to reconcile **exactly** with those raw
//! outcomes; [`crate::invariants::check`] recomputes the whole ledger
//! from scratch and diffs it bit-for-bit.

use crate::autoscale::ScaleEvent;
use crate::chaos::ChaosStats;
use crate::request::DeadlineClass;
use ulp_kernels::Benchmark;

/// Nearest-rank percentile of a **sorted** sample set, in the sample
/// unit. Returns 0 for an empty set.
#[must_use]
pub fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Latency summary of one population of completed requests.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyStats {
    /// Completed request count.
    pub count: u64,
    /// Median latency, nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile latency, nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// Arithmetic mean, nanoseconds.
    pub mean_ns: u64,
}

impl LatencyStats {
    /// Summarizes a latency sample set (need not be sorted).
    #[must_use]
    pub fn of(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let sum: u128 = sorted.iter().map(|&x| u128::from(x)).sum();
        LatencyStats {
            count: sorted.len() as u64,
            p50_ns: percentile_ns(&sorted, 50.0),
            p95_ns: percentile_ns(&sorted, 95.0),
            p99_ns: percentile_ns(&sorted, 99.0),
            mean_ns: (sum / sorted.len() as u128) as u64,
        }
    }
}

/// How one admitted-or-rejected request ultimately left the system.
///
/// Exactly one kind per request: the conservation invariant
/// `total = completed + rejected + failed_over + failed` is checked
/// against these raw records after every run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Served to completion on an accelerator worker.
    Completed,
    /// Turned away by admission control (full tenant queue).
    Rejected,
    /// Accelerator dispatch failed (retry budget exhausted or watchdog
    /// gave up) and the request finished on the host instead.
    FailedOver,
    /// Dispatch failed and no host fallback was available.
    Failed,
}

/// Raw per-request record a serve run leaves behind.
///
/// The aggregate counters in [`ServeReport`] and the [`SloLedger`] are
/// required to be recomputable bit-for-bit from these.
#[derive(Clone, Copy, Debug)]
pub struct RequestOutcome {
    /// Request id, unique within the workload.
    pub id: u64,
    /// Tenant index into the pool's tenant table.
    pub tenant: usize,
    /// Deadline class the request was admitted under.
    pub class: DeadlineClass,
    /// Kernel the request asked for.
    pub benchmark: Benchmark,
    /// Arrival instant on the virtual clock, nanoseconds.
    pub arrival_ns: u64,
    /// Instant the request left the system (completion, failover
    /// completion, failure, or — for rejections — the arrival instant).
    pub done_ns: u64,
    /// How the request left the system.
    pub kind: OutcomeKind,
}

/// One tenant × deadline-class cell of the [`SloLedger`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SloCell {
    /// Requests of this cell served on an accelerator.
    pub completed: u64,
    /// Requests of this cell that finished via host fallback.
    pub failed_over: u64,
    /// Requests of this cell that failed outright.
    pub failed: u64,
    /// Requests of this cell rejected at admission.
    pub rejected: u64,
    /// Finished requests (completed or failed-over) whose latency
    /// exceeded the class deadline.
    pub missed: u64,
}

/// Exact per-tenant × per-deadline-class SLO-miss ledger.
///
/// `cells[tenant][class.rank() as usize]` — the run updates it once per request
/// outcome, and [`crate::invariants::check`] recomputes the whole table
/// from the raw [`RequestOutcome`] records and diffs it bit-for-bit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SloLedger {
    /// Row per tenant (tenant-table order), column per deadline class
    /// ([`DeadlineClass::rank`] order).
    pub cells: Vec<[SloCell; DeadlineClass::ALL.len()]>,
}

impl SloLedger {
    /// Ledger of `tenants` all-zero rows.
    #[must_use]
    pub fn new(tenants: usize) -> Self {
        SloLedger {
            cells: vec![[SloCell::default(); DeadlineClass::ALL.len()]; tenants],
        }
    }

    /// Mutable cell for a tenant × class pair.
    pub fn cell_mut(&mut self, tenant: usize, class: DeadlineClass) -> &mut SloCell {
        &mut self.cells[tenant][class.rank() as usize]
    }

    /// Posts one raw outcome to the ledger; `missed` marks a finished
    /// request that blew its class deadline.
    pub fn post(&mut self, o: &RequestOutcome) {
        let cell = self.cell_mut(o.tenant, o.class);
        match o.kind {
            OutcomeKind::Completed => cell.completed += 1,
            OutcomeKind::FailedOver => cell.failed_over += 1,
            OutcomeKind::Failed => cell.failed += 1,
            OutcomeKind::Rejected => cell.rejected += 1,
        }
        if matches!(o.kind, OutcomeKind::Completed | OutcomeKind::FailedOver)
            && o.done_ns.saturating_sub(o.arrival_ns) > o.class.deadline_ns()
        {
            cell.missed += 1;
        }
    }

    /// Rebuilds a ledger purely from raw outcome records. Used by the
    /// invariant checker to cross-examine the incrementally maintained
    /// ledger.
    #[must_use]
    pub fn recompute(tenants: usize, outcomes: &[RequestOutcome]) -> Self {
        let mut ledger = SloLedger::new(tenants);
        for o in outcomes {
            ledger.post(o);
        }
        ledger
    }

    /// Total deadline misses across all cells.
    #[must_use]
    pub fn total_missed(&self) -> u64 {
        self.cells
            .iter()
            .flat_map(|row| row.iter())
            .map(|c| c.missed)
            .sum()
    }
}

/// Per-tenant slice of a [`ServeReport`].
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Tenant name, from its [`TenantSpec`](crate::TenantSpec).
    pub name: String,
    /// Fairness weight the scheduler used.
    pub weight: u32,
    /// Latency summary of the tenant's finished requests (accelerator
    /// completions plus host failovers).
    pub latency: LatencyStats,
    /// Arrivals turned away by admission control.
    pub rejected: u64,
    /// Finished requests later than their class deadline.
    pub deadline_misses: u64,
    /// Requests that finished via host fallback.
    pub failed_over: u64,
    /// Requests that failed outright (no fallback available).
    pub failed: u64,
}

/// Everything a serve run measured.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Arrivals admitted past admission control
    /// (`admitted + rejected` = offered workload).
    pub admitted: u64,
    /// Requests served to completion on an accelerator.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests that finished on the host after accelerator dispatch
    /// failed under fault injection.
    pub failed_over: u64,
    /// Requests that failed outright (dispatch failed, no fallback).
    pub failed: u64,
    /// Admitted requests still queued when the run ended. Must be zero —
    /// the invariant checker treats anything else as a request leak.
    pub stranded: u64,
    /// Finished requests later than their class deadline.
    pub deadline_misses: u64,
    /// Virtual instant the last batch finished, nanoseconds.
    pub makespan_ns: u64,
    /// Overall latency summary.
    pub latency: LatencyStats,
    /// Per-tenant summaries, in tenant-table order.
    pub tenants: Vec<TenantReport>,
    /// `hist[k]` counts dispatched batches of size `k + 1`.
    pub batch_hist: Vec<u64>,
    /// Program binaries shipped (cold uploads the batching amortized
    /// away do not appear here).
    pub uploads: u64,
    /// Busy nanoseconds per worker, pool order.
    pub worker_busy_ns: Vec<u64>,
    /// Highest total queued depth observed at any scheduling instant.
    pub max_queue_depth: usize,
    /// Fault-injection and recovery counters (all zero when chaos is
    /// off).
    pub chaos: ChaosStats,
    /// Exact SLO-miss ledger, per tenant × deadline class.
    pub slo: SloLedger,
    /// Raw per-request outcome records, in outcome order (rejections at
    /// arrival, finishes at service completion).
    pub outcomes: Vec<RequestOutcome>,
    /// Autoscaler decision log, in decision order. Empty when the pool
    /// runs with a fixed worker count.
    pub scale_events: Vec<ScaleEvent>,
    /// Active-worker capacity integral `Σ active × Δt` over the run,
    /// nanoseconds of worker-time. 0 when autoscaling is off (capacity
    /// is then simply `pool × makespan`).
    pub capacity_ns: u64,
    /// Rejections charged by pressure-scaled admission pricing (a subset
    /// of `rejected`; queue-cap rejections make up the rest).
    pub priced_out: u64,
}

impl ServeReport {
    /// Completed requests per second of virtual time (0 when nothing
    /// completed).
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.makespan_ns as f64 / 1e9)
    }

    /// Requests that finished service: accelerator completions plus
    /// host failovers.
    #[must_use]
    pub fn finished(&self) -> u64 {
        self.completed + self.failed_over
    }

    /// Mean dispatched batch size (0 when nothing dispatched).
    #[must_use]
    pub fn mean_batch(&self) -> f64 {
        let batches: u64 = self.batch_hist.iter().sum();
        if batches == 0 {
            return 0.0;
        }
        let requests: u64 = self
            .batch_hist
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as u64 + 1) * n)
            .sum();
        requests as f64 / batches as f64
    }

    /// Pool utilization: busy time summed over workers divided by the
    /// capacity that was actually online — the autoscaler's capacity
    /// integral when one ran, `pool × makespan` otherwise.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let busy: u64 = self.worker_busy_ns.iter().sum();
        if self.capacity_ns > 0 {
            return busy as f64 / self.capacity_ns as f64;
        }
        if self.makespan_ns == 0 || self.worker_busy_ns.is_empty() {
            return 0.0;
        }
        busy as f64 / (self.makespan_ns as f64 * self.worker_busy_ns.len() as f64)
    }
}

/// Renders nanoseconds as fixed-point milliseconds ("12.345"), the only
/// latency format reports and tables use — fixed precision keeps golden
/// snapshots stable.
#[must_use]
pub fn fmt_ms(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000_000, (ns % 1_000_000) / 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&s, 50.0), 50);
        assert_eq!(percentile_ns(&s, 95.0), 95);
        assert_eq!(percentile_ns(&s, 99.0), 99);
        assert_eq!(percentile_ns(&s, 100.0), 100);
        assert_eq!(percentile_ns(&[], 50.0), 0);
        assert_eq!(percentile_ns(&[7], 99.0), 7);
    }

    #[test]
    fn latency_stats_summarize() {
        let st = LatencyStats::of(&[30, 10, 20]);
        assert_eq!(st.count, 3);
        assert_eq!(st.p50_ns, 20);
        assert_eq!(st.p99_ns, 30);
        assert_eq!(st.mean_ns, 20);
    }

    #[test]
    fn fixed_point_millis() {
        assert_eq!(fmt_ms(0), "0.000");
        assert_eq!(fmt_ms(1_234_567), "1.234");
        assert_eq!(fmt_ms(50_000_000), "50.000");
    }

    #[test]
    fn batch_histogram_mean() {
        let r = ServeReport {
            admitted: 10,
            completed: 10,
            rejected: 0,
            failed_over: 0,
            failed: 0,
            stranded: 0,
            deadline_misses: 0,
            makespan_ns: 2_000_000_000,
            latency: LatencyStats::default(),
            tenants: Vec::new(),
            batch_hist: vec![2, 0, 0, 2], // 2 singles + 2 fours = 10 reqs
            uploads: 0,
            worker_busy_ns: vec![1_000_000_000],
            max_queue_depth: 4,
            chaos: ChaosStats::default(),
            slo: SloLedger::default(),
            outcomes: Vec::new(),
            scale_events: Vec::new(),
            capacity_ns: 0,
            priced_out: 0,
        };
        assert!((r.mean_batch() - 2.5).abs() < 1e-12);
        assert!((r.throughput_rps() - 5.0).abs() < 1e-12);
        assert!((r.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(r.finished(), 10);
    }

    #[test]
    fn ledger_posts_and_recomputes_exactly() {
        let outcomes = [
            RequestOutcome {
                id: 0,
                tenant: 0,
                class: DeadlineClass::Interactive,
                benchmark: Benchmark::ALL[0],
                arrival_ns: 0,
                done_ns: 10_000_000, // 10 ms < 50 ms deadline
                kind: OutcomeKind::Completed,
            },
            RequestOutcome {
                id: 1,
                tenant: 0,
                class: DeadlineClass::Interactive,
                benchmark: Benchmark::ALL[0],
                arrival_ns: 0,
                done_ns: 90_000_000, // 90 ms > 50 ms: miss
                kind: OutcomeKind::FailedOver,
            },
            RequestOutcome {
                id: 2,
                tenant: 1,
                class: DeadlineClass::Batch,
                benchmark: Benchmark::ALL[0],
                arrival_ns: 5,
                done_ns: 5,
                kind: OutcomeKind::Rejected,
            },
            RequestOutcome {
                id: 3,
                tenant: 1,
                class: DeadlineClass::Standard,
                benchmark: Benchmark::ALL[0],
                arrival_ns: 0,
                done_ns: 400_000_000, // failed: never finished, no miss
                kind: OutcomeKind::Failed,
            },
        ];
        let ledger = SloLedger::recompute(2, &outcomes);
        let cell = ledger.cells[0][DeadlineClass::Interactive.rank() as usize];
        assert_eq!(cell.completed, 1);
        assert_eq!(cell.failed_over, 1);
        assert_eq!(cell.missed, 1);
        assert_eq!(
            ledger.cells[1][DeadlineClass::Batch.rank() as usize].rejected,
            1
        );
        assert_eq!(
            ledger.cells[1][DeadlineClass::Standard.rank() as usize].failed,
            1
        );
        assert_eq!(ledger.total_missed(), 1);

        // Incremental maintenance must equal the batch recompute.
        let mut incremental = SloLedger::new(2);
        for o in &outcomes {
            incremental.post(o);
        }
        assert_eq!(incremental, ledger);
    }
}
