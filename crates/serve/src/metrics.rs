//! Latency, throughput, and fairness accounting of a serve run.
//!
//! Percentiles use the nearest-rank method on the exact latency samples
//! (no buckets, no interpolation), so a report is a pure function of the
//! completion set and re-renders byte-identically.

/// Nearest-rank percentile of a **sorted** sample set, in the sample
/// unit. Returns 0 for an empty set.
#[must_use]
pub fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Latency summary of one population of completed requests.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyStats {
    /// Completed request count.
    pub count: u64,
    /// Median latency, nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile latency, nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// Arithmetic mean, nanoseconds.
    pub mean_ns: u64,
}

impl LatencyStats {
    /// Summarizes a latency sample set (need not be sorted).
    #[must_use]
    pub fn of(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let sum: u128 = sorted.iter().map(|&x| u128::from(x)).sum();
        LatencyStats {
            count: sorted.len() as u64,
            p50_ns: percentile_ns(&sorted, 50.0),
            p95_ns: percentile_ns(&sorted, 95.0),
            p99_ns: percentile_ns(&sorted, 99.0),
            mean_ns: (sum / sorted.len() as u128) as u64,
        }
    }
}

/// Per-tenant slice of a [`ServeReport`].
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Tenant name, from its [`TenantSpec`](crate::TenantSpec).
    pub name: String,
    /// Fairness weight the scheduler used.
    pub weight: u32,
    /// Latency summary of the tenant's completions.
    pub latency: LatencyStats,
    /// Arrivals turned away by admission control.
    pub rejected: u64,
    /// Completions later than their class deadline.
    pub deadline_misses: u64,
}

/// Everything a serve run measured.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Requests that completed.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Completions later than their class deadline.
    pub deadline_misses: u64,
    /// Virtual instant the last batch finished, nanoseconds.
    pub makespan_ns: u64,
    /// Overall latency summary.
    pub latency: LatencyStats,
    /// Per-tenant summaries, in tenant-table order.
    pub tenants: Vec<TenantReport>,
    /// `hist[k]` counts dispatched batches of size `k + 1`.
    pub batch_hist: Vec<u64>,
    /// Program binaries shipped (cold uploads the batching amortized
    /// away do not appear here).
    pub uploads: u64,
    /// Busy nanoseconds per worker, pool order.
    pub worker_busy_ns: Vec<u64>,
    /// Highest total queued depth observed at any scheduling instant.
    pub max_queue_depth: usize,
}

impl ServeReport {
    /// Completed requests per second of virtual time (0 when nothing
    /// completed).
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.makespan_ns as f64 / 1e9)
    }

    /// Mean dispatched batch size (0 when nothing dispatched).
    #[must_use]
    pub fn mean_batch(&self) -> f64 {
        let batches: u64 = self.batch_hist.iter().sum();
        if batches == 0 {
            return 0.0;
        }
        let requests: u64 = self
            .batch_hist
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as u64 + 1) * n)
            .sum();
        requests as f64 / batches as f64
    }

    /// Pool utilization: busy time summed over workers divided by
    /// `pool × makespan`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.makespan_ns == 0 || self.worker_busy_ns.is_empty() {
            return 0.0;
        }
        let busy: u64 = self.worker_busy_ns.iter().sum();
        busy as f64 / (self.makespan_ns as f64 * self.worker_busy_ns.len() as f64)
    }
}

/// Renders nanoseconds as fixed-point milliseconds ("12.345"), the only
/// latency format reports and tables use — fixed precision keeps golden
/// snapshots stable.
#[must_use]
pub fn fmt_ms(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000_000, (ns % 1_000_000) / 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&s, 50.0), 50);
        assert_eq!(percentile_ns(&s, 95.0), 95);
        assert_eq!(percentile_ns(&s, 99.0), 99);
        assert_eq!(percentile_ns(&s, 100.0), 100);
        assert_eq!(percentile_ns(&[], 50.0), 0);
        assert_eq!(percentile_ns(&[7], 99.0), 7);
    }

    #[test]
    fn latency_stats_summarize() {
        let st = LatencyStats::of(&[30, 10, 20]);
        assert_eq!(st.count, 3);
        assert_eq!(st.p50_ns, 20);
        assert_eq!(st.p99_ns, 30);
        assert_eq!(st.mean_ns, 20);
    }

    #[test]
    fn fixed_point_millis() {
        assert_eq!(fmt_ms(0), "0.000");
        assert_eq!(fmt_ms(1_234_567), "1.234");
        assert_eq!(fmt_ms(50_000_000), "50.000");
    }

    #[test]
    fn batch_histogram_mean() {
        let r = ServeReport {
            completed: 10,
            rejected: 0,
            deadline_misses: 0,
            makespan_ns: 2_000_000_000,
            latency: LatencyStats::default(),
            tenants: Vec::new(),
            batch_hist: vec![2, 0, 0, 2], // 2 singles + 2 fours = 10 reqs
            uploads: 0,
            worker_busy_ns: vec![1_000_000_000],
            max_queue_depth: 4,
        };
        assert!((r.mean_batch() - 2.5).abs() < 1e-12);
        assert!((r.throughput_rps() - 5.0).abs() < 1e-12);
        assert!((r.utilization() - 0.5).abs() < 1e-12);
    }
}
