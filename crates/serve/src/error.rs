//! Contextful errors of the serving layer.
//!
//! Long soak runs must never die with a bare panic deep inside the
//! scheduler: a failure surfaced from a million-request seeded run is
//! only actionable if it names the misconfiguration (which kernel, which
//! tenant index) so the harness can prepend the workload seed and emit a
//! one-line reproduction recipe.

use std::error::Error;
use std::fmt;

use ulp_offload::OffloadError;

/// Error raised by the serving layer's pool, cost book, or soak harness.
#[derive(Debug)]
pub enum ServeError {
    /// A request named a kernel the pool's [`CostBook`](crate::CostBook)
    /// never measured — a pool configuration bug, reported instead of
    /// panicking so soak harnesses can attach the seed.
    UnknownKernel {
        /// Name of the unmeasured kernel.
        kernel: &'static str,
    },
    /// A request carried a tenant index outside the pool's tenant table.
    UnknownTenant {
        /// The offending tenant index.
        index: usize,
        /// Number of tenants the pool was built with.
        tenants: usize,
    },
    /// Host-fallback pricing was requested but the cost book was built
    /// without host measurements
    /// ([`CostBook::measure_with_host`](crate::CostBook::measure_with_host)).
    MissingHostCost {
        /// Kernel whose host cost is missing.
        kernel: &'static str,
    },
    /// Cost measurement failed while bringing the pool up.
    Measure(OffloadError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownKernel { kernel } => {
                write!(f, "kernel `{kernel}` is not in the pool's cost book")
            }
            ServeError::UnknownTenant { index, tenants } => {
                write!(
                    f,
                    "request names tenant index {index} but the pool has {tenants} tenants"
                )
            }
            ServeError::MissingHostCost { kernel } => {
                write!(
                    f,
                    "host fallback needs a host cost for `{kernel}`; build the book with \
                     CostBook::measure_with_host"
                )
            }
            ServeError::Measure(e) => write!(f, "cost measurement failed: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Measure(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OffloadError> for ServeError {
    fn from(e: OffloadError) -> Self {
        ServeError::Measure(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = ServeError::UnknownTenant {
            index: 7,
            tenants: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains('7') && msg.contains('2'), "{msg}");
        assert!(ServeError::UnknownKernel { kernel: "cnn" }
            .to_string()
            .contains("cnn"));
        assert!(ServeError::MissingHostCost { kernel: "hog" }
            .to_string()
            .contains("measure_with_host"));
    }
}
