//! Chaos engineering for the serving pool: per-worker fault injection,
//! scripted disruptions, and exact degradation accounting — all on the
//! virtual clock.
//!
//! The fault layer (bit errors, frame drops, mid-offload hangs) and the
//! serving layer were built in separate PRs and had never met: a pool
//! "served millions of users" over links that could not fail. This
//! module attaches a seeded [`FaultInjector`] to each worker and prices
//! every degradation a dispatch suffers on the same virtual nanosecond
//! clock the scheduler runs on:
//!
//! * a corrupted, truncated, or dropped frame costs a retransmission
//!   (frame time + bounded exponential backoff), mirroring
//!   [`OffloadPolicy::backoff_for`](ulp_offload::OffloadPolicy);
//! * a hung accelerator run costs the armed watchdog window, then the
//!   whole batch restarts from scratch;
//! * when the retry budget is exhausted the batch **fails over to the
//!   host** (each payload runs serially at the measured host cost) or —
//!   with fallback disabled — fails outright.
//!
//! Every event is counted exactly once, so the SLO-miss ledger and the
//! invariant checker ([`crate::invariants`]) can reconcile aggregated
//! metrics against raw per-request outcomes bit-for-bit. With no
//! profiles configured the whole module is bypassed and the pool's
//! scheduling (and its golden snapshots) is untouched.

use ulp_link::{
    EocOutcome, FaultConfig, FaultInjector, FaultStats, SpiLink, TxOutcome, FRAME_OVERHEAD,
};
use ulp_offload::{HetSystemConfig, OffloadCost};

/// Fault rates of one worker's link and event wires — the serve-scale
/// twin of [`FaultConfig`], holding only the knobs that make sense for a
/// pool (permanently stuck wires would just delete the worker; model
/// those as blackouts instead).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct FaultProfile {
    /// Per-bit flip probability on the serial data lines.
    pub bit_error_rate: f64,
    /// Probability a whole frame is lost.
    pub drop_rate: f64,
    /// Probability a frame is cut short mid-transfer.
    pub truncate_rate: f64,
    /// Probability one dispatched batch hangs mid-offload (no
    /// end-of-computation event; the watchdog is the only way out).
    pub hang_rate: f64,
    /// Probability the end-of-computation event fires late.
    pub late_eoc_rate: f64,
    /// How late (accelerator cycles) a late event fires.
    pub late_eoc_cycles: u64,
}

impl FaultProfile {
    /// Whether any fault mechanism is enabled.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.bit_error_rate > 0.0
            || self.drop_rate > 0.0
            || self.truncate_rate > 0.0
            || self.hang_rate > 0.0
            || self.late_eoc_rate > 0.0
    }

    /// The link-layer fault model this profile induces, seeded for one
    /// worker.
    #[must_use]
    pub fn fault_config(&self, seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            bit_error_rate: self.bit_error_rate,
            drop_rate: self.drop_rate,
            truncate_rate: self.truncate_rate,
            hang_rate: self.hang_rate,
            late_eoc_rate: self.late_eoc_rate,
            late_eoc_cycles: self.late_eoc_cycles,
            stuck_fetch_enable: false,
            stuck_eoc: false,
        }
    }
}

/// Chaos configuration of a pool: which workers fault, how hard the
/// runtime fights back, and where the host fallback sits.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed of the per-worker fault streams (worker `w` draws from an
    /// independent stream derived from `seed` and `w`).
    pub seed: u64,
    /// Fault profiles, assigned round-robin to workers (`profiles[w %
    /// len]`). Empty disables chaos entirely — the pool behaves (and
    /// reports) bit-identically to a chaos-free build.
    pub profiles: Vec<FaultProfile>,
    /// Retransmissions per frame (and restart attempts per hung batch)
    /// before the dispatch is declared unrecoverable.
    pub max_retries: u32,
    /// Host cycles paused before the first retransmission; doubles per
    /// attempt (bounded exponential backoff).
    pub backoff_cycles: u64,
    /// Watchdog armed around each dispatch, in virtual nanoseconds.
    /// `0` selects the automatic deadline: 4× the batch's expected
    /// compute time, matching the offload runtime's WFE watchdog.
    pub watchdog_ns: u64,
    /// Run an unrecoverable batch's payloads on the host (needs host
    /// costs in the book, see
    /// [`CostBook::measure_with_host`](crate::CostBook::measure_with_host));
    /// otherwise the batch's requests fail outright.
    pub fallback_to_host: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 1,
            profiles: Vec::new(),
            max_retries: 3,
            backoff_cycles: 64,
            watchdog_ns: 0,
            fallback_to_host: true,
        }
    }
}

impl ChaosConfig {
    /// Whether any worker will actually see faults.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.profiles.iter().any(FaultProfile::is_active)
    }

    /// One profile for every worker (the common case: a uniformly
    /// unreliable fleet).
    #[must_use]
    pub fn uniform(seed: u64, profile: FaultProfile) -> Self {
        ChaosConfig {
            seed,
            profiles: vec![profile],
            ..ChaosConfig::default()
        }
    }

    /// The injector of worker `widx`, with its derived seed. `None`
    /// when chaos is off or the worker's profile is fault-free.
    #[must_use]
    pub fn injector_for(&self, widx: usize) -> Option<FaultInjector> {
        if self.profiles.is_empty() {
            return None;
        }
        let profile = self.profiles[widx % self.profiles.len()];
        if !profile.is_active() {
            return None;
        }
        // Splitmix-style stream separation: workers never share draws.
        let seed = self
            .seed
            .wrapping_add((widx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Some(FaultInjector::new(profile.fault_config(seed)))
    }

    /// Backoff pause before retransmission `attempt` (0-based), in
    /// virtual nanoseconds at the given host clock.
    #[must_use]
    pub fn backoff_ns(&self, attempt: u32, mcu_hz: f64) -> u64 {
        let cycles = self
            .backoff_cycles
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        (cycles as f64 * 1e9 / mcu_hz).round() as u64
    }
}

/// One worker outage window: the worker finishes its in-flight batch but
/// accepts no new dispatches while `[start_ns, end_ns)` covers the
/// virtual clock.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Blackout {
    /// Index of the affected worker.
    pub worker: usize,
    /// First virtual nanosecond of the outage.
    pub start_ns: u64,
    /// First virtual nanosecond after the outage.
    pub end_ns: u64,
}

/// Scripted disruption timeline of a run: worker blackouts plus
/// kernel-binary residency flushes (every worker forgets its resident
/// binary at each flush instant, so the next dispatch pays the upload
/// again — "residency churn").
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// Worker outage windows.
    pub blackouts: Vec<Blackout>,
    /// Sorted virtual instants at which all resident binaries are
    /// evicted.
    pub flushes: Vec<u64>,
}

impl Timeline {
    /// Whether the timeline disrupts anything at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.blackouts.is_empty() || !self.flushes.is_empty()
    }

    /// Whether worker `widx` is blacked out at `now`.
    #[must_use]
    pub fn blacked_out(&self, widx: usize, now: u64) -> bool {
        self.blackouts
            .iter()
            .any(|b| b.worker == widx && b.start_ns <= now && now < b.end_ns)
    }

    /// The earliest blackout end after `now` — the instant a stalled
    /// scheduler must wake at when every available worker is out.
    #[must_use]
    pub fn next_blackout_end(&self, now: u64) -> Option<u64> {
        self.blackouts
            .iter()
            .filter(|b| b.end_ns > now)
            .map(|b| b.end_ns)
            .min()
    }
}

/// Virtual-time frame pricing for retransmissions, derived from the
/// pool's system configuration without instantiating a simulator.
#[derive(Clone, Debug)]
pub(crate) struct LinkTiming {
    link: SpiLink,
    drive_hz: f64,
    mcu_hz: f64,
    pulp_hz: f64,
}

impl LinkTiming {
    pub(crate) fn new(cfg: &HetSystemConfig) -> Self {
        LinkTiming {
            link: SpiLink::new(cfg.link_width, cfg.link_prescaler),
            drive_hz: cfg.link_drive_hz(),
            mcu_hz: cfg.mcu_freq_hz,
            pulp_hz: cfg.pulp_freq_hz,
        }
    }

    /// Wire time of one `payload`-byte frame (plus header), ns.
    pub(crate) fn frame_ns(&self, payload: usize) -> u64 {
        (self
            .link
            .transfer_seconds(payload + FRAME_OVERHEAD, self.drive_hz)
            * 1e9)
            .round() as u64
    }

    pub(crate) fn mcu_hz(&self) -> f64 {
        self.mcu_hz
    }

    /// Accelerator cycles → virtual nanoseconds.
    pub(crate) fn pulp_cycles_ns(&self, cycles: u64) -> u64 {
        (cycles as f64 * 1e9 / self.pulp_hz).round() as u64
    }
}

/// Aggregated chaos counters of one serve run. Scheduler-side events
/// (retries, watchdog fires, fallbacks) are counted here; raw link-layer
/// counters are folded in from the per-worker injectors at the end of
/// the run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ChaosStats {
    /// Frames passed through the per-worker injectors.
    pub frames: u64,
    /// Individual bits flipped on the wires.
    pub bits_flipped: u64,
    /// Frames corrupted, truncated, or dropped (detected failures).
    pub frames_damaged: u64,
    /// Corrupted frames whose damage aliased the CRC-16 and was accepted.
    pub crc_escapes: u64,
    /// Frame retransmissions the recovery layer paid for.
    pub retransmissions: u64,
    /// Watchdog expiries on hung batches (each one restarts the batch).
    pub watchdog_fires: u64,
    /// End-of-computation events that fired late.
    pub late_events: u64,
    /// Batches abandoned to the host fallback.
    pub fallback_batches: u64,
    /// Requests completed by the host fallback.
    pub fallback_requests: u64,
    /// Requests that failed outright (retries exhausted, no fallback).
    pub failed_requests: u64,
    /// Residency-churn flushes applied.
    pub residency_flushes: u64,
    /// Dispatches denied because the affine worker was blacked out.
    pub blackout_windows: u64,
}

impl ChaosStats {
    /// Folds one injector's raw link counters into the run totals.
    pub(crate) fn absorb(&mut self, s: &FaultStats) {
        self.frames += s.frames;
        self.bits_flipped += s.bits_flipped;
        self.frames_damaged += s.frames_corrupted + s.frames_dropped + s.frames_truncated;
        self.crc_escapes += s.crc_escapes;
    }

    /// True if any chaos activity was recorded.
    #[must_use]
    pub fn any(&self) -> bool {
        *self != ChaosStats::default()
    }
}

/// What a dispatched batch came to, after chaos had its say.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum BatchFate {
    /// Delivered and computed on the accelerator (possibly after
    /// recovery work).
    Served,
    /// Unrecoverable on the accelerator; payloads completed on the host.
    FailedOver,
    /// Unrecoverable and no fallback: the batch's requests failed.
    Failed,
}

/// Priced outcome of one dispatch under fault injection.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Degradation {
    /// Total service time of the dispatch, recovery included, ns.
    pub service_ns: u64,
    /// How the batch ended.
    pub fate: BatchFate,
    /// Scheduler-side event deltas of this dispatch.
    pub retransmissions: u64,
    /// Watchdog expiries charged to this dispatch.
    pub watchdog_fires: u64,
    /// Late end-of-computation events absorbed.
    pub late_events: u64,
}

/// Everything `degrade` needs to price one dispatch.
pub(crate) struct DispatchJob<'a> {
    /// Measured cost of the batch's kernel.
    pub cost: &'a OffloadCost,
    /// Fused iteration count of the batch.
    pub iterations: usize,
    /// Whether the binary upload is part of this dispatch.
    pub ship: bool,
    /// Healthy (fault-free) service time of the batch, ns.
    pub base_ns: u64,
    /// Compute portion of `base_ns` (sets the automatic watchdog), ns.
    pub compute_ns: u64,
    /// Host cost per payload iteration (0 = unmeasured), ns.
    pub host_est_ns: u64,
}

/// Replays the fault channel over every frame of a dispatch and its
/// end-of-computation event, pricing the recovery work on the virtual
/// clock. The injector's PRNG stream advances exactly once per assessed
/// frame / event draw, so a `(seed, workload)` pair replays the same
/// chaos on every machine.
pub(crate) fn degrade(
    injector: &mut FaultInjector,
    cfg: &ChaosConfig,
    timing: &LinkTiming,
    job: &DispatchJob<'_>,
) -> Degradation {
    let mut out = Degradation {
        service_ns: 0,
        fate: BatchFate::Served,
        retransmissions: 0,
        watchdog_fires: 0,
        late_events: 0,
    };
    let mut extra_ns = 0u64;
    let mut undeliverable = false;

    // Frame plan of the fused batch: the binary (if shipping) then every
    // input and output buffer of every iteration, in wire order.
    let binary = job.ship.then_some(job.cost.offload_bytes);
    let per_iter = job
        .cost
        .input_frames
        .iter()
        .chain(job.cost.output_frames.iter())
        .copied();
    let frames = binary
        .into_iter()
        .chain((0..job.iterations).flat_map(|_| per_iter.clone()));

    'frames: for payload in frames {
        let mut attempt = 0u32;
        loop {
            match injector.assess(payload + FRAME_OVERHEAD) {
                TxOutcome::Delivered | TxOutcome::Corrupted { escaped: true } => break,
                TxOutcome::Corrupted { escaped: false }
                | TxOutcome::Truncated
                | TxOutcome::Dropped => {
                    if attempt >= cfg.max_retries {
                        undeliverable = true;
                        break 'frames;
                    }
                    out.retransmissions += 1;
                    extra_ns = extra_ns
                        .saturating_add(timing.frame_ns(payload))
                        .saturating_add(cfg.backoff_ns(attempt, timing.mcu_hz()));
                    attempt += 1;
                }
            }
        }
    }

    if !undeliverable {
        let watchdog_ns = if cfg.watchdog_ns > 0 {
            cfg.watchdog_ns
        } else {
            // The offload runtime's auto deadline: 4× expected compute,
            // floored so even a trivial batch arms a real window.
            (job.compute_ns.saturating_mul(4)).max(1_000)
        };
        let mut attempt = 0u32;
        loop {
            match injector.eoc() {
                EocOutcome::OnTime => break,
                EocOutcome::Late(cycles) => {
                    out.late_events += 1;
                    extra_ns = extra_ns.saturating_add(timing.pulp_cycles_ns(cycles));
                    break;
                }
                EocOutcome::Hang => {
                    out.watchdog_fires += 1;
                    extra_ns = extra_ns.saturating_add(watchdog_ns);
                    if attempt >= cfg.max_retries {
                        undeliverable = true;
                        break;
                    }
                    attempt += 1;
                }
            }
        }
    }

    if undeliverable {
        if cfg.fallback_to_host && job.host_est_ns > 0 {
            out.fate = BatchFate::FailedOver;
            out.service_ns =
                extra_ns.saturating_add(job.host_est_ns.saturating_mul(job.iterations as u64));
        } else {
            out.fate = BatchFate::Failed;
            out.service_ns = extra_ns;
        }
    } else {
        out.fate = BatchFate::Served;
        out.service_ns = job.base_ns.saturating_add(extra_ns);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> LinkTiming {
        LinkTiming::new(&HetSystemConfig::default())
    }

    fn job(cost: &OffloadCost) -> DispatchJob<'_> {
        DispatchJob {
            cost,
            iterations: 4,
            ship: true,
            base_ns: 1_000_000,
            compute_ns: 400_000,
            host_est_ns: 10_000_000,
        }
    }

    fn cost() -> OffloadCost {
        OffloadCost {
            kernel: "synthetic".to_owned(),
            offload_bytes: 2048,
            input_frames: vec![256, 64],
            output_frames: vec![128],
            cycles_cold: 5000,
            cycles_warm: 4000,
            activity: Default::default(),
        }
    }

    #[test]
    fn fault_free_profile_is_transparent() {
        let cfg = ChaosConfig::default();
        assert!(!cfg.is_active());
        assert!(cfg.injector_for(0).is_none());
        let c = ChaosConfig::uniform(7, FaultProfile::default());
        assert!(!c.is_active());
        assert!(c.injector_for(3).is_none());
    }

    #[test]
    fn clean_channel_charges_nothing() {
        let cfg = ChaosConfig::uniform(
            1,
            FaultProfile {
                hang_rate: 0.0,
                // active so an injector exists, but never fires
                bit_error_rate: 1e-18,
                ..FaultProfile::default()
            },
        );
        let mut inj = cfg.injector_for(0).unwrap();
        let c = cost();
        let d = degrade(&mut inj, &cfg, &timing(), &job(&c));
        assert_eq!(d.fate, BatchFate::Served);
        assert_eq!(d.service_ns, 1_000_000);
        assert_eq!(d.retransmissions + d.watchdog_fires + d.late_events, 0);
    }

    #[test]
    fn degradation_is_seed_deterministic() {
        let cfg = ChaosConfig::uniform(
            99,
            FaultProfile {
                bit_error_rate: 1e-4,
                drop_rate: 0.02,
                hang_rate: 0.05,
                ..FaultProfile::default()
            },
        );
        let run = || {
            let mut inj = cfg.injector_for(2).unwrap();
            let c = cost();
            (0..200)
                .map(|_| {
                    let d = degrade(&mut inj, &cfg, &timing(), &job(&c));
                    (d.service_ns, d.fate, d.retransmissions, d.watchdog_fires)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn certain_hang_falls_over_to_host_after_retries() {
        let cfg = ChaosConfig {
            max_retries: 2,
            ..ChaosConfig::uniform(
                5,
                FaultProfile {
                    hang_rate: 1.0,
                    ..FaultProfile::default()
                },
            )
        };
        let mut inj = cfg.injector_for(0).unwrap();
        let c = cost();
        let j = job(&c);
        let d = degrade(&mut inj, &cfg, &timing(), &j);
        assert_eq!(d.fate, BatchFate::FailedOver);
        assert_eq!(d.watchdog_fires, 3); // initial + 2 retries
        assert!(d.service_ns >= 4 * 10_000_000, "host time dominates");
    }

    #[test]
    fn no_fallback_means_failed() {
        let cfg = ChaosConfig {
            fallback_to_host: false,
            max_retries: 0,
            ..ChaosConfig::uniform(
                5,
                FaultProfile {
                    drop_rate: 1.0,
                    ..FaultProfile::default()
                },
            )
        };
        let mut inj = cfg.injector_for(0).unwrap();
        let c = cost();
        let d = degrade(&mut inj, &cfg, &timing(), &job(&c));
        assert_eq!(d.fate, BatchFate::Failed);
    }

    #[test]
    fn workers_draw_from_independent_streams() {
        let cfg = ChaosConfig::uniform(
            3,
            FaultProfile {
                drop_rate: 0.5,
                ..FaultProfile::default()
            },
        );
        let seq = |w: usize| {
            let mut inj = cfg.injector_for(w).unwrap();
            (0..64).map(|_| inj.assess(64)).collect::<Vec<_>>()
        };
        assert_ne!(seq(0), seq(1));
    }

    #[test]
    fn timeline_blackout_windows() {
        let t = Timeline {
            blackouts: vec![Blackout {
                worker: 1,
                start_ns: 100,
                end_ns: 200,
            }],
            flushes: vec![150],
        };
        assert!(t.is_active());
        assert!(!t.blacked_out(0, 150));
        assert!(t.blacked_out(1, 100));
        assert!(t.blacked_out(1, 199));
        assert!(!t.blacked_out(1, 200));
        assert_eq!(t.next_blackout_end(0), Some(200));
        assert_eq!(t.next_blackout_end(200), None);
    }
}
