//! Request and tenant vocabulary of the serving layer.

use ulp_kernels::Benchmark;

/// Latency expectation attached to a request. The class orders requests
/// inside a tenant's queue (interactive work jumps ahead of batch work)
/// and defines the deadline the metrics check completions against.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DeadlineClass {
    /// User-facing request: 50 ms deadline.
    Interactive,
    /// Default class: 250 ms deadline.
    Standard,
    /// Throughput-oriented background work: 2 s deadline.
    Batch,
}

impl DeadlineClass {
    /// All classes, in priority order (highest first).
    pub const ALL: [DeadlineClass; 3] = [
        DeadlineClass::Interactive,
        DeadlineClass::Standard,
        DeadlineClass::Batch,
    ];

    /// Completion deadline relative to arrival, in nanoseconds of
    /// virtual time.
    #[must_use]
    pub fn deadline_ns(self) -> u64 {
        match self {
            DeadlineClass::Interactive => 50_000_000,
            DeadlineClass::Standard => 250_000_000,
            DeadlineClass::Batch => 2_000_000_000,
        }
    }

    /// Scheduling rank: lower is served first within a tenant.
    #[must_use]
    pub fn rank(self) -> u8 {
        match self {
            DeadlineClass::Interactive => 0,
            DeadlineClass::Standard => 1,
            DeadlineClass::Batch => 2,
        }
    }

    /// Short label used in tables and traces.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DeadlineClass::Interactive => "interactive",
            DeadlineClass::Standard => "standard",
            DeadlineClass::Batch => "batch",
        }
    }
}

/// Static description of one tenant of the serving layer.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name (also the key in reports).
    pub name: String,
    /// Weight of the tenant's share of accelerator time. A tenant with
    /// weight 2 is entitled to twice the service of a weight-1 tenant
    /// when both are backlogged. Must be ≥ 1.
    pub weight: u32,
    /// Admission-control bound: at most this many requests may wait in
    /// the tenant's queue; arrivals beyond it are rejected.
    pub queue_cap: usize,
}

impl TenantSpec {
    /// A weight-1 tenant with the default queue bound of 64.
    #[must_use]
    pub fn new(name: &str) -> Self {
        TenantSpec {
            name: name.to_owned(),
            weight: 1,
            queue_cap: 64,
        }
    }

    /// Same, with an explicit fairness weight.
    #[must_use]
    pub fn weighted(name: &str, weight: u32) -> Self {
        TenantSpec {
            weight: weight.max(1),
            ..TenantSpec::new(name)
        }
    }
}

/// One offload request in flight through the serving layer.
#[derive(Clone, Copy, Debug)]
pub struct ServeRequest {
    /// Globally unique, assigned in arrival order by the load generator.
    pub id: u64,
    /// Index into the pool's tenant table.
    pub tenant: usize,
    /// Which paper benchmark the payload runs.
    pub benchmark: Benchmark,
    /// Kernel iterations the payload asks for (≥ 1).
    pub iterations: usize,
    /// Latency class.
    pub class: DeadlineClass,
    /// Arrival instant on the virtual clock, in nanoseconds.
    pub arrival_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_classes_are_ordered() {
        assert!(DeadlineClass::Interactive.rank() < DeadlineClass::Standard.rank());
        assert!(DeadlineClass::Standard.rank() < DeadlineClass::Batch.rank());
        assert!(DeadlineClass::Interactive.deadline_ns() < DeadlineClass::Batch.deadline_ns());
    }

    #[test]
    fn tenant_weight_is_clamped() {
        assert_eq!(TenantSpec::weighted("t", 0).weight, 1);
        assert_eq!(TenantSpec::new("t").weight, 1);
    }
}
