//! The fleet layer: many node groups, each a [`ServePool`], behind
//! rendezvous-hash tenant sharding.
//!
//! A group is the unit of placement and autoscaling: tenants are pinned
//! to groups by [`place_tenant`](crate::place_tenant) (never split — all
//! of a tenant's traffic lands on one group, so per-tenant fairness and
//! SLO accounting stay local), and each group runs its own
//! [`AutoscalePolicy`](crate::AutoscalePolicy) against its own queues.
//! Groups share nothing at runtime, which is what lets
//! [`Fleet::run`] simulate them in parallel with `ulp_par::par_map`
//! while staying byte-identical under any `--jobs` setting: the
//! partition is computed up front, each group's simulation is a pure
//! function of its own request slice, and `par_map` preserves order.
//!
//! Request ids stay **global** through the partition. That is what makes
//! fleet-wide conservation checkable: if the sharding layer ever routed
//! one request to two groups, the duplicate id survives into the merged
//! outcome records and [`invariants::check_groups`](crate::invariants::check_groups)
//! flags it.

use ulp_offload::HetSystemConfig;
use ulp_par::par_map;

use crate::autoscale::ScaleEvent;
use crate::error::ServeError;
use crate::metrics::{LatencyStats, OutcomeKind, ServeReport};
use crate::request::{ServeRequest, TenantSpec};
use crate::server::{CostBook, ServeConfig, ServePool};

/// Static configuration of a [`Fleet`].
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Node groups to shard tenants across (≥ 1).
    pub groups: usize,
    /// Per-group pool configuration: `serve.pool` workers per group
    /// (the autoscaler's starting count when `serve.autoscale` is set).
    pub serve: ServeConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            groups: 2,
            serve: ServeConfig::default(),
        }
    }
}

/// One node group's slice of a [`FleetReport`].
#[derive(Clone, Debug)]
pub struct GroupReport {
    /// Group index.
    pub group: usize,
    /// Global tenant indices served by this group, in tenant-table
    /// order. The group's [`ServeReport`] uses *local* tenant indices —
    /// `tenants[local]` maps them back.
    pub tenants: Vec<usize>,
    /// Requests routed to this group.
    pub offered: u64,
    /// The group's full serve report (tenant indices local to the
    /// group, request ids global to the fleet).
    pub report: ServeReport,
}

/// Everything a fleet run measured.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Per-group reports, group order.
    pub groups: Vec<GroupReport>,
    /// `placement[t]` is the group of global tenant `t`.
    pub placement: Vec<usize>,
    /// Total requests offered to the fleet.
    pub offered: u64,
    /// Latest instant any group finished, nanoseconds.
    pub makespan_ns: u64,
    /// Fleet-wide latency summary, recomputed from every group's raw
    /// finished-request outcomes.
    pub latency: LatencyStats,
    /// All groups' autoscaler decisions, stamped with their group and
    /// merged in `(at_ns, group)` order.
    pub scale_events: Vec<ScaleEvent>,
}

impl FleetReport {
    fn sum(&self, f: impl Fn(&ServeReport) -> u64) -> u64 {
        self.groups.iter().map(|g| f(&g.report)).sum()
    }

    /// Requests admitted across all groups.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.sum(|r| r.admitted)
    }

    /// Requests completed on accelerators across all groups.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.sum(|r| r.completed)
    }

    /// Requests rejected at admission across all groups.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.sum(|r| r.rejected)
    }

    /// Rejections charged by admission pricing across all groups.
    #[must_use]
    pub fn priced_out(&self) -> u64 {
        self.sum(|r| r.priced_out)
    }

    /// Requests that finished on the host across all groups.
    #[must_use]
    pub fn failed_over(&self) -> u64 {
        self.sum(|r| r.failed_over)
    }

    /// Requests that failed outright across all groups.
    #[must_use]
    pub fn failed(&self) -> u64 {
        self.sum(|r| r.failed)
    }

    /// Requests stranded in queues across all groups (0 on any healthy
    /// run).
    #[must_use]
    pub fn stranded(&self) -> u64 {
        self.sum(|r| r.stranded)
    }

    /// Deadline misses across all groups.
    #[must_use]
    pub fn deadline_misses(&self) -> u64 {
        self.sum(|r| r.deadline_misses)
    }

    /// Completed requests per second of virtual time, fleet-wide.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.completed() as f64 / (self.makespan_ns as f64 / 1e9)
    }

    /// Fleet utilization: busy worker-time over online capacity. Uses
    /// the groups' autoscaler capacity integrals when present; groups
    /// without one contribute `workers × fleet makespan`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let busy: u64 = self.sum(|r| r.worker_busy_ns.iter().sum());
        let capacity: u64 = self
            .groups
            .iter()
            .map(|g| {
                if g.report.capacity_ns > 0 {
                    g.report.capacity_ns
                } else {
                    self.makespan_ns * g.report.worker_busy_ns.len() as u64
                }
            })
            .sum();
        if capacity == 0 {
            return 0.0;
        }
        busy as f64 / capacity as f64
    }

    /// Scale-up decisions across all groups.
    #[must_use]
    pub fn scale_ups(&self) -> u64 {
        self.scale_events.iter().filter(|e| e.to > e.from).count() as u64
    }

    /// Scale-down decisions across all groups.
    #[must_use]
    pub fn scale_downs(&self) -> u64 {
        self.scale_events.iter().filter(|e| e.to < e.from).count() as u64
    }
}

/// A sharded fleet of [`ServePool`] node groups.
///
/// The fleet holds *configuration*, not live pools: each [`Fleet::run`]
/// builds every group's pool inside the parallel map, so group
/// simulations share nothing and a run is a pure function of the
/// request stream. (A pool's optional tracer is single-threaded by
/// design, which is the other reason pools cannot outlive one group's
/// simulation here.)
pub struct Fleet {
    sys_config: HetSystemConfig,
    tenants: Vec<TenantSpec>,
    book: CostBook,
    cfg: FleetConfig,
    /// `placement[t]` = group of global tenant `t`.
    placement: Vec<usize>,
    /// Global tenant indices per group, ascending.
    group_tenants: Vec<Vec<usize>>,
}

impl Fleet {
    /// Builds a fleet sharding `tenants` across `cfg.groups` node
    /// groups.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.groups` is 0.
    #[must_use]
    pub fn new(
        sys_config: &HetSystemConfig,
        tenants: Vec<TenantSpec>,
        book: CostBook,
        cfg: FleetConfig,
    ) -> Self {
        let placement = crate::place_tenants(&tenants, cfg.groups);
        let mut group_tenants: Vec<Vec<usize>> = vec![Vec::new(); cfg.groups];
        for (t, &g) in placement.iter().enumerate() {
            group_tenants[g].push(t);
        }
        Fleet {
            sys_config: sys_config.clone(),
            tenants,
            book,
            cfg,
            placement,
            group_tenants,
        }
    }

    /// `placement[t]` is the group of global tenant `t`.
    #[must_use]
    pub fn placement(&self) -> &[usize] {
        &self.placement
    }

    /// Global tenant indices of one group, ascending.
    #[must_use]
    pub fn group_tenants(&self, group: usize) -> &[usize] {
        &self.group_tenants[group]
    }

    /// Runs one request stream (sorted by arrival, global tenant
    /// indices, unique ids) through the whole fleet and reports what
    /// happened. The stream is partitioned by each request's tenant
    /// placement — order and ids preserved, tenant indices remapped
    /// group-locally — and the groups simulate independently in
    /// parallel.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when a request names a tenant
    /// outside the fleet's table, or any error a group's
    /// [`ServePool::run`] reports for its slice.
    pub fn run(&self, requests: &[ServeRequest]) -> Result<FleetReport, ServeError> {
        for r in requests {
            if r.tenant >= self.tenants.len() {
                return Err(ServeError::UnknownTenant {
                    index: r.tenant,
                    tenants: self.tenants.len(),
                });
            }
        }

        // local_index[t] = t's position inside its group's tenant table.
        let mut local_index = vec![0usize; self.tenants.len()];
        for members in &self.group_tenants {
            for (local, &t) in members.iter().enumerate() {
                local_index[t] = local;
            }
        }
        let mut slices: Vec<Vec<ServeRequest>> = vec![Vec::new(); self.cfg.groups];
        for r in requests {
            let mut local = *r;
            local.tenant = local_index[r.tenant];
            slices[self.placement[r.tenant]].push(local);
        }

        let groups: Vec<usize> = (0..self.cfg.groups).collect();
        let reports = par_map(&groups, |_, &g| -> Result<ServeReport, ServeError> {
            let specs: Vec<TenantSpec> = self.group_tenants[g]
                .iter()
                .map(|&t| self.tenants[t].clone())
                .collect();
            let mut pool =
                ServePool::new(&self.sys_config, specs, self.book.clone(), self.cfg.serve);
            pool.run(&slices[g])
        });

        let mut group_reports = Vec::with_capacity(self.cfg.groups);
        for (g, r) in reports.into_iter().enumerate() {
            let mut report = r?;
            for e in &mut report.scale_events {
                e.group = g;
            }
            group_reports.push(GroupReport {
                group: g,
                tenants: self.group_tenants[g].clone(),
                offered: slices[g].len() as u64,
                report,
            });
        }

        let makespan_ns = group_reports
            .iter()
            .map(|g| g.report.makespan_ns)
            .max()
            .unwrap_or(0);
        let mut finished: Vec<u64> = Vec::new();
        for g in &group_reports {
            for o in &g.report.outcomes {
                if matches!(o.kind, OutcomeKind::Completed | OutcomeKind::FailedOver) {
                    finished.push(o.done_ns - o.arrival_ns);
                }
            }
        }
        let mut scale_events: Vec<ScaleEvent> = group_reports
            .iter()
            .flat_map(|g| g.report.scale_events.iter().copied())
            .collect();
        scale_events.sort_by_key(|e| (e.at_ns, e.group));

        Ok(FleetReport {
            placement: self.placement.clone(),
            offered: requests.len() as u64,
            makespan_ns,
            latency: LatencyStats::of(&finished),
            scale_events,
            groups: group_reports,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscale::AutoscalePolicy;
    use crate::invariants;
    use crate::loadgen::{TenantLoad, WorkloadSpec};
    use ulp_kernels::{Benchmark, TargetEnv};

    fn kernels() -> Vec<Benchmark> {
        vec![Benchmark::MatMul, Benchmark::MatMulShort, Benchmark::Cnn]
    }

    fn book() -> CostBook {
        CostBook::measure(
            &TargetEnv::pulp_parallel(),
            &HetSystemConfig::default(),
            &kernels(),
        )
        .expect("kernel measurement must succeed")
    }

    fn tenants(n: usize) -> Vec<TenantSpec> {
        (0..n)
            .map(|i| TenantSpec::new(&format!("tenant-{i}")))
            .collect()
    }

    fn workload(specs: &[TenantSpec], seed: u64, rate: f64) -> Vec<ServeRequest> {
        WorkloadSpec {
            seed,
            duration_ns: 500_000_000,
            tenants: specs
                .iter()
                .map(|s| TenantLoad::uniform(s.clone(), rate, &kernels()))
                .collect(),
        }
        .generate()
    }

    #[test]
    fn fleet_conserves_requests_across_groups() {
        let specs = tenants(8);
        let reqs = workload(&specs, 51, 120.0);
        let fleet = Fleet::new(
            &HetSystemConfig::default(),
            specs,
            book(),
            FleetConfig {
                groups: 3,
                serve: ServeConfig {
                    pool: 2,
                    ..ServeConfig::default()
                },
            },
        );
        let report = fleet.run(&reqs).unwrap();
        assert_eq!(report.offered, reqs.len() as u64);
        assert_eq!(
            report.groups.iter().map(|g| g.offered).sum::<u64>(),
            reqs.len() as u64
        );
        assert_eq!(
            invariants::check_fleet(&report),
            Vec::<String>::new(),
            "a clean fleet run must pass every invariant"
        );
        assert!(report.completed() > 0);
        assert!(report.throughput_rps() > 0.0);
        let u = report.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn tenants_are_never_split_across_groups() {
        let specs = tenants(16);
        let reqs = workload(&specs, 52, 60.0);
        let fleet = Fleet::new(
            &HetSystemConfig::default(),
            specs.clone(),
            book(),
            FleetConfig {
                groups: 4,
                serve: ServeConfig {
                    pool: 2,
                    ..ServeConfig::default()
                },
            },
        );
        // Membership tables agree with placement and partition the
        // tenant set.
        let mut seen = vec![0usize; specs.len()];
        for g in 0..4 {
            for &t in fleet.group_tenants(g) {
                assert_eq!(fleet.placement()[t], g);
                seen[t] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each tenant in exactly one group"
        );
        // And the routed offered counts reproduce a by-hand partition
        // of the request stream.
        let report = fleet.run(&reqs).unwrap();
        for g in &report.groups {
            let expected = reqs
                .iter()
                .filter(|r| fleet.placement()[r.tenant] == g.group)
                .count() as u64;
            assert_eq!(g.offered, expected, "group {}", g.group);
        }
    }

    #[test]
    fn single_group_fleet_matches_plain_pool() {
        let specs = tenants(4);
        let reqs = workload(&specs, 53, 150.0);
        let serve = ServeConfig {
            pool: 2,
            ..ServeConfig::default()
        };
        let fleet = Fleet::new(
            &HetSystemConfig::default(),
            specs.clone(),
            book(),
            FleetConfig { groups: 1, serve },
        );
        let fr = fleet.run(&reqs).unwrap();
        let pr = ServePool::new(&HetSystemConfig::default(), specs, book(), serve)
            .run(&reqs)
            .unwrap();
        assert_eq!(fr.completed(), pr.completed);
        assert_eq!(fr.makespan_ns, pr.makespan_ns);
        assert_eq!(fr.latency.p99_ns, pr.latency.p99_ns);
        assert_eq!(fr.groups[0].report.batch_hist, pr.batch_hist);
        assert_eq!(fr.groups[0].report.uploads, pr.uploads);
    }

    #[test]
    fn autoscaled_groups_stamp_their_decisions() {
        let specs = tenants(6);
        let reqs = workload(&specs, 54, 700.0);
        let fleet = Fleet::new(
            &HetSystemConfig::default(),
            specs,
            book(),
            FleetConfig {
                groups: 2,
                serve: ServeConfig {
                    pool: 1,
                    autoscale: Some(AutoscalePolicy::new(1, 4)),
                    ..ServeConfig::default()
                },
            },
        );
        let report = fleet.run(&reqs).unwrap();
        assert!(
            report.scale_ups() > 0,
            "overload must scale some group up: {:?}",
            report.scale_events
        );
        assert!(report.scale_events.iter().all(|e| e.group < 2));
        assert!(report
            .scale_events
            .windows(2)
            .all(|w| (w[0].at_ns, w[0].group) <= (w[1].at_ns, w[1].group)));
        assert_eq!(invariants::check_fleet(&report), Vec::<String>::new());
    }

    #[test]
    fn unknown_tenants_are_reported() {
        let specs = tenants(2);
        let mut reqs = workload(&specs, 55, 50.0);
        reqs[0].tenant = 7;
        let fleet = Fleet::new(
            &HetSystemConfig::default(),
            specs,
            book(),
            FleetConfig::default(),
        );
        match fleet.run(&reqs) {
            Err(ServeError::UnknownTenant {
                index: 7,
                tenants: 2,
            }) => {}
            other => panic!("expected UnknownTenant, got {other:?}"),
        }
    }
}
