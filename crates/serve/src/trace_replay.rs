//! Request-trace record and replay: the testing primitive that turns
//! scheduler comparisons from statistical into exact.
//!
//! [`TraceRecorder`] captures a request stream — tenant, kernel, SLO
//! class, arrival instant, iteration count, and the request id that
//! doubles as its payload seed — into a compact **versioned** format,
//! and [`TraceReplayer`] turns the bytes back into the identical
//! stream. Because a serve run is a pure function of its request stream
//! (see [`server`](crate::server)), replaying one trace through two
//! scheduler configurations is an exact A/B experiment: every divergence
//! in the reports is caused by the scheduler, not the workload.
//!
//! # Format v1
//!
//! Two interchangeable encodings, distinguished on decode by the first
//! byte (`{` = JSON, anything else = binary):
//!
//! * **Binary** — little-endian throughout: magic `UTRC`, version `u16`
//!   (= 1), reserved `u16` (= 0), record count `u64`; then one 28-byte
//!   record per request (`id u64`, `arrival_ns u64`, `tenant u32`,
//!   `iterations u32`, `kernel u8`, `class u8`, reserved `u16`); then an
//!   FNV-1a 64 checksum over the record bytes. Kernels travel as their
//!   index into [`Benchmark::ALL`] and classes as
//!   [`DeadlineClass::rank`], so the encoding is stable across display
//!   name changes.
//! * **JSON** — line-oriented for the workspace's hand-rolled parsing:
//!   a header line carrying the schema string
//!   (`ulp-serve-trace-v1`) and count, then one object per line per
//!   request in stream order. The `kernel_name` field is informational;
//!   decode trusts the index.
//!
//! Either encoding decodes to the identical request slice, and
//! re-encoding a decoded trace reproduces the input bytes exactly —
//! that round trip is what the replay tests pin.

use std::fmt;

use ulp_kernels::Benchmark;

use crate::request::{DeadlineClass, ServeRequest};

/// Magic prefix of a binary trace.
pub const TRACE_MAGIC: [u8; 4] = *b"UTRC";
/// Current trace format version.
pub const TRACE_VERSION: u16 = 1;
/// Schema string of the JSON encoding.
pub const TRACE_SCHEMA: &str = "ulp-serve-trace-v1";
/// Bytes per binary record.
const RECORD_BYTES: usize = 28;
/// Bytes of the binary header (magic + version + reserved + count).
const HEADER_BYTES: usize = 16;

/// Why a trace failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// Fewer bytes than the header, records, and checksum require.
    Truncated,
    /// The first four bytes are neither `UTRC` nor a JSON header.
    BadMagic,
    /// A version this decoder does not speak.
    BadVersion(u16),
    /// The record bytes do not hash to the stored checksum.
    BadChecksum,
    /// A kernel index outside [`Benchmark::ALL`].
    BadKernel(u8),
    /// A class rank outside [`DeadlineClass::ALL`].
    BadClass(u8),
    /// A malformed JSON trace (message names the offending line).
    Json(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Truncated => write!(f, "trace truncated"),
            TraceError::BadMagic => write!(f, "not a request trace (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::BadChecksum => write!(f, "trace checksum mismatch (corrupt records)"),
            TraceError::BadKernel(k) => write!(f, "kernel index {k} outside the benchmark table"),
            TraceError::BadClass(c) => write!(f, "class rank {c} outside the deadline classes"),
            TraceError::Json(msg) => write!(f, "malformed JSON trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// FNV-1a 64 over raw bytes — the trace checksum.
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Records a request stream and encodes it to the versioned trace
/// formats.
#[derive(Clone, Debug, Default)]
pub struct TraceRecorder {
    records: Vec<ServeRequest>,
}

impl TraceRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Appends one request to the trace.
    pub fn record(&mut self, r: &ServeRequest) {
        self.records.push(*r);
    }

    /// Appends a whole stream in order.
    pub fn record_all(&mut self, rs: &[ServeRequest]) {
        self.records.extend_from_slice(rs);
    }

    /// Recorded requests, in record order.
    #[must_use]
    pub fn requests(&self) -> &[ServeRequest] {
        &self.records
    }

    /// Recorded request count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Encodes the trace in the binary format.
    ///
    /// # Panics
    ///
    /// Panics when a recorded request's kernel is not in
    /// [`Benchmark::ALL`] — impossible for requests built from the
    /// benchmark table.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES + self.records.len() * RECORD_BYTES + 8);
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        for r in &self.records {
            let kernel = Benchmark::ALL
                .iter()
                .position(|&b| b == r.benchmark)
                .expect("recorded kernel must be in the benchmark table")
                as u8;
            out.extend_from_slice(&r.id.to_le_bytes());
            out.extend_from_slice(&r.arrival_ns.to_le_bytes());
            out.extend_from_slice(&(r.tenant as u32).to_le_bytes());
            out.extend_from_slice(&(r.iterations as u32).to_le_bytes());
            out.push(kernel);
            out.push(r.class.rank());
            out.extend_from_slice(&0u16.to_le_bytes());
        }
        let checksum = fnv1a_bytes(&out[HEADER_BYTES..]);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Encodes the trace in the line-oriented JSON format.
    #[must_use]
    pub fn encode_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"count\":{}}}\n",
            self.records.len()
        ));
        for r in &self.records {
            let kernel = Benchmark::ALL
                .iter()
                .position(|&b| b == r.benchmark)
                .expect("recorded kernel must be in the benchmark table");
            out.push_str(&format!(
                "{{\"id\":{},\"tenant\":{},\"kernel\":{},\"kernel_name\":\"{}\",\
                 \"class\":{},\"arrival_ns\":{},\"iterations\":{}}}\n",
                r.id,
                r.tenant,
                kernel,
                r.benchmark.name(),
                r.class.rank(),
                r.arrival_ns,
                r.iterations
            ));
        }
        out
    }
}

/// Decodes a recorded trace and hands the stream back for replay.
#[derive(Clone, Debug)]
pub struct TraceReplayer {
    requests: Vec<ServeRequest>,
}

impl TraceReplayer {
    /// Decodes either trace encoding, sniffing JSON by a leading `{`.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] the bytes earn.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.first() == Some(&b'{') {
            let text = std::str::from_utf8(bytes)
                .map_err(|_| TraceError::Json("not valid UTF-8".into()))?;
            return Self::decode_json(text);
        }
        Self::decode_binary(bytes)
    }

    fn decode_binary(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.len() < HEADER_BYTES + 8 {
            return Err(TraceError::Truncated);
        }
        if bytes[..4] != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != TRACE_VERSION {
            return Err(TraceError::BadVersion(version));
        }
        let count = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        let body_end = HEADER_BYTES + count * RECORD_BYTES;
        if bytes.len() != body_end + 8 {
            return Err(TraceError::Truncated);
        }
        let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
        if fnv1a_bytes(&bytes[HEADER_BYTES..body_end]) != stored {
            return Err(TraceError::BadChecksum);
        }
        let mut requests = Vec::with_capacity(count);
        for rec in bytes[HEADER_BYTES..body_end].chunks_exact(RECORD_BYTES) {
            let kernel = rec[24];
            let class = rec[25];
            requests.push(ServeRequest {
                id: u64::from_le_bytes(rec[..8].try_into().expect("8 bytes")),
                arrival_ns: u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes")),
                tenant: u32::from_le_bytes(rec[16..20].try_into().expect("4 bytes")) as usize,
                iterations: u32::from_le_bytes(rec[20..24].try_into().expect("4 bytes")) as usize,
                benchmark: *Benchmark::ALL
                    .get(kernel as usize)
                    .ok_or(TraceError::BadKernel(kernel))?,
                class: decode_class(class)?,
            });
        }
        Ok(TraceReplayer { requests })
    }

    /// Decodes the line-oriented JSON encoding.
    ///
    /// # Errors
    ///
    /// [`TraceError::Json`] on malformed text, plus the kernel/class
    /// range errors of the binary decoder.
    pub fn decode_json(text: &str) -> Result<Self, TraceError> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| TraceError::Json("empty".into()))?;
        if !header.contains(&format!("\"schema\":\"{TRACE_SCHEMA}\"")) {
            return Err(TraceError::Json(format!(
                "header missing schema {TRACE_SCHEMA:?}: {header}"
            )));
        }
        let count = json_u64(header, "count")? as usize;
        let mut requests = Vec::with_capacity(count);
        for line in lines.filter(|l| !l.trim().is_empty()) {
            let kernel = json_u64(line, "kernel")?;
            let class = json_u64(line, "class")?;
            if kernel >= Benchmark::ALL.len() as u64 {
                return Err(TraceError::BadKernel(kernel as u8));
            }
            requests.push(ServeRequest {
                id: json_u64(line, "id")?,
                tenant: json_u64(line, "tenant")? as usize,
                benchmark: Benchmark::ALL[kernel as usize],
                iterations: json_u64(line, "iterations")? as usize,
                class: decode_class(class as u8)?,
                arrival_ns: json_u64(line, "arrival_ns")?,
            });
        }
        if requests.len() != count {
            return Err(TraceError::Json(format!(
                "header promises {count} records, found {}",
                requests.len()
            )));
        }
        Ok(TraceReplayer { requests })
    }

    /// The decoded request stream — feed it to any
    /// [`ServePool::run`](crate::ServePool::run) or
    /// [`Fleet::run`](crate::Fleet::run); the byte-identical stream
    /// makes the runs exact A/B comparisons.
    #[must_use]
    pub fn requests(&self) -> &[ServeRequest] {
        &self.requests
    }

    /// Consumes the replayer, handing the stream out by value.
    #[must_use]
    pub fn into_requests(self) -> Vec<ServeRequest> {
        self.requests
    }
}

fn decode_class(rank: u8) -> Result<DeadlineClass, TraceError> {
    DeadlineClass::ALL
        .iter()
        .copied()
        .find(|c| c.rank() == rank)
        .ok_or(TraceError::BadClass(rank))
}

/// Extracts `"key":<u64>` from one hand-rolled JSON line.
fn json_u64(line: &str, key: &str) -> Result<u64, TraceError> {
    let pat = format!("\"{key}\":");
    let at = line
        .find(&pat)
        .ok_or_else(|| TraceError::Json(format!("missing {key:?} in {line}")))?;
    let digits: String = line[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .map_err(|_| TraceError::Json(format!("non-numeric {key:?} in {line}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{TenantLoad, WorkloadSpec};
    use crate::request::TenantSpec;

    fn stream() -> Vec<ServeRequest> {
        WorkloadSpec {
            seed: 77,
            duration_ns: 200_000_000,
            tenants: vec![TenantLoad {
                class_mix: [1.0, 1.0, 1.0],
                ..TenantLoad::uniform(TenantSpec::new("t"), 500.0, &Benchmark::ALL[..3])
            }],
        }
        .generate()
    }

    fn eq_streams(a: &[ServeRequest], b: &[ServeRequest]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.benchmark, y.benchmark);
            assert_eq!(x.iterations, y.iterations);
            assert_eq!(x.class, y.class);
            assert_eq!(x.arrival_ns, y.arrival_ns);
        }
    }

    #[test]
    fn binary_round_trip_is_byte_identical() {
        let reqs = stream();
        let mut rec = TraceRecorder::new();
        rec.record_all(&reqs);
        let bytes = rec.encode();
        let replay = TraceReplayer::decode(&bytes).unwrap();
        eq_streams(&reqs, replay.requests());
        // Re-encoding the decoded stream reproduces the bytes exactly.
        let mut rec2 = TraceRecorder::new();
        rec2.record_all(replay.requests());
        assert_eq!(rec2.encode(), bytes);
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let reqs = stream();
        let mut rec = TraceRecorder::new();
        rec.record_all(&reqs);
        let text = rec.encode_json();
        assert!(text.starts_with(&format!("{{\"schema\":\"{TRACE_SCHEMA}\"")));
        let replay = TraceReplayer::decode(text.as_bytes()).unwrap();
        eq_streams(&reqs, replay.requests());
        let mut rec2 = TraceRecorder::new();
        rec2.record_all(replay.requests());
        assert_eq!(rec2.encode_json(), text);
    }

    #[test]
    fn corruption_is_caught() {
        let mut rec = TraceRecorder::new();
        rec.record_all(&stream());
        let good = rec.encode();

        let mut flipped = good.clone();
        flipped[HEADER_BYTES + 3] ^= 0x40;
        assert_eq!(
            TraceReplayer::decode(&flipped).unwrap_err(),
            TraceError::BadChecksum
        );

        assert_eq!(
            TraceReplayer::decode(&good[..good.len() - 1]).unwrap_err(),
            TraceError::Truncated
        );

        let mut magic = good.clone();
        magic[0] = b'X';
        assert_eq!(
            TraceReplayer::decode(&magic).unwrap_err(),
            TraceError::BadMagic
        );

        let mut version = good;
        version[4] = 9;
        assert_eq!(
            TraceReplayer::decode(&version).unwrap_err(),
            TraceError::BadVersion(9)
        );
    }

    #[test]
    fn bad_kernel_and_class_indices_are_caught() {
        let mut rec = TraceRecorder::new();
        rec.record(&stream()[0]);
        let mut bytes = rec.encode();
        bytes[HEADER_BYTES + 24] = 250; // kernel byte of record 0
                                        // Checksum covers the record bytes, so recompute it to reach the
                                        // kernel check.
        let body_end = bytes.len() - 8;
        let sum = fnv1a_bytes(&bytes[HEADER_BYTES..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            TraceReplayer::decode(&bytes).unwrap_err(),
            TraceError::BadKernel(250)
        );

        let mut rec = TraceRecorder::new();
        rec.record(&stream()[0]);
        let mut bytes = rec.encode();
        bytes[HEADER_BYTES + 25] = 9; // class byte of record 0
        let sum = fnv1a_bytes(&bytes[HEADER_BYTES..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            TraceReplayer::decode(&bytes).unwrap_err(),
            TraceError::BadClass(9)
        );
    }

    #[test]
    fn empty_trace_round_trips() {
        let rec = TraceRecorder::new();
        assert!(rec.is_empty());
        let replay = TraceReplayer::decode(&rec.encode()).unwrap();
        assert!(replay.requests().is_empty());
        let replay = TraceReplayer::decode(rec.encode_json().as_bytes()).unwrap();
        assert!(replay.into_requests().is_empty());
    }
}
