//! Long-horizon soak orchestration: one seeded spec describing the
//! workload, the scripted disruptions, and the fault injection of an
//! entire chaos run, plus the harness that executes it and cross-checks
//! every invariant.
//!
//! A soak is a pure function of its [`SoakSpec`]: the same spec produces
//! a byte-identical [`ServeReport`] on every machine and under every
//! `--jobs` setting, which is what lets CI pin a million-request chaos
//! run as a golden artifact. Failures always carry the workload seed, so
//! a nightly red run is reproducible from the one-line message alone.

use ulp_offload::HetSystemConfig;

use crate::chaos::{Blackout, ChaosConfig, Timeline};
use crate::invariants::check;
use crate::loadgen::{Burst, WorkloadSpec};
use crate::metrics::ServeReport;
use crate::request::TenantSpec;
use crate::server::{CostBook, ServeConfig, ServePool};

/// Everything one soak run needs: the seeded workload, the scripted
/// disruption phases, the fault injection, and the pool shape.
#[derive(Clone, Debug)]
pub struct SoakSpec {
    /// Base offered load (seeded; the seed is the soak's identity).
    pub workload: WorkloadSpec,
    /// Scripted tenant overload windows (e.g. 100× flash crowds).
    pub bursts: Vec<Burst>,
    /// Scripted worker outage windows.
    pub blackouts: Vec<Blackout>,
    /// Kernel-binary residency churn: every worker forgets its resident
    /// binary each `churn_period_ns` of virtual time. 0 disables churn.
    pub churn_period_ns: u64,
    /// Per-worker fault injection.
    pub chaos: ChaosConfig,
    /// Pool shape and scheduling discipline.
    pub serve: ServeConfig,
}

impl SoakSpec {
    /// A calm soak of `workload` on `serve` — no bursts, no blackouts,
    /// no churn, no faults. Useful as the control cell next to a chaos
    /// cell.
    #[must_use]
    pub fn calm(workload: WorkloadSpec, serve: ServeConfig) -> Self {
        SoakSpec {
            workload,
            bursts: Vec::new(),
            blackouts: Vec::new(),
            churn_period_ns: 0,
            chaos: ChaosConfig::default(),
            serve,
        }
    }

    /// The disruption timeline the spec scripts: its blackouts plus a
    /// residency flush at every churn period boundary inside the
    /// workload window.
    #[must_use]
    pub fn timeline(&self) -> Timeline {
        let mut flushes = Vec::new();
        if self.churn_period_ns > 0 {
            let mut t = self.churn_period_ns;
            while t < self.workload.duration_ns {
                flushes.push(t);
                t = t.saturating_add(self.churn_period_ns);
            }
        }
        Timeline {
            blackouts: self.blackouts.clone(),
            flushes,
        }
    }
}

/// What a soak run produced: the full report, the offered request count,
/// and every invariant violation (empty = healthy).
#[derive(Clone, Debug)]
pub struct SoakOutcome {
    /// The run's complete report, raw outcomes included.
    pub report: ServeReport,
    /// Requests the workload offered (admitted + rejected).
    pub requests: u64,
    /// Invariant violations, each prefixed with the workload seed so a
    /// failure is reproducible from the message alone.
    pub violations: Vec<String>,
}

/// Runs one soak to completion: generates the seeded workload (bursts
/// superposed), executes it on a chaos-armed pool, and cross-checks
/// every invariant of the resulting report.
///
/// # Errors
///
/// A pool misconfiguration (unknown kernel/tenant, missing host cost) is
/// returned as a message carrying the workload seed.
pub fn run_soak(
    sys_config: &HetSystemConfig,
    book: CostBook,
    spec: &SoakSpec,
) -> Result<SoakOutcome, String> {
    let seed = spec.workload.seed;
    let requests = spec.workload.generate_with_bursts(&spec.bursts);
    let tenants: Vec<TenantSpec> = spec
        .workload
        .tenants
        .iter()
        .map(|l| l.spec.clone())
        .collect();
    let mut pool = ServePool::new(sys_config, tenants, book, spec.serve)
        .with_chaos(spec.chaos.clone())
        .with_timeline(spec.timeline());
    let report = pool
        .run(&requests)
        .map_err(|e| format!("soak(seed={seed}): {e}"))?;
    let violations = check(requests.len() as u64, &report)
        .into_iter()
        .map(|v| format!("soak(seed={seed}): {v}"))
        .collect();
    Ok(SoakOutcome {
        report,
        requests: requests.len() as u64,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::FaultProfile;
    use crate::loadgen::TenantLoad;
    use crate::server::BatchPolicy;
    use ulp_kernels::{Benchmark, TargetEnv};

    fn kernels() -> Vec<Benchmark> {
        vec![Benchmark::MatMul, Benchmark::Cnn]
    }

    fn spec(seed: u64) -> SoakSpec {
        SoakSpec {
            workload: WorkloadSpec {
                seed,
                duration_ns: 1_000_000_000,
                tenants: vec![
                    TenantLoad::uniform(TenantSpec::weighted("app", 2), 200.0, &kernels()),
                    TenantLoad::uniform(TenantSpec::new("bg"), 50.0, &kernels()),
                ],
            },
            bursts: vec![Burst {
                tenant: 1,
                start_ns: 300_000_000,
                end_ns: 350_000_000,
                factor: 20.0,
            }],
            blackouts: vec![Blackout {
                worker: 0,
                start_ns: 500_000_000,
                end_ns: 600_000_000,
            }],
            churn_period_ns: 250_000_000,
            chaos: ChaosConfig::uniform(
                seed ^ 0x00C0_FFEE,
                FaultProfile {
                    bit_error_rate: 1e-5,
                    drop_rate: 0.01,
                    hang_rate: 0.005,
                    ..FaultProfile::default()
                },
            ),
            serve: ServeConfig {
                pool: 2,
                policy: BatchPolicy::KernelAware { max_batch: 8 },
                ..ServeConfig::default()
            },
        }
    }

    fn book() -> CostBook {
        CostBook::measure_with_host(
            &TargetEnv::pulp_parallel(),
            &TargetEnv::host_m4(),
            &HetSystemConfig::default(),
            &kernels(),
        )
        .expect("kernel measurement must succeed")
    }

    #[test]
    fn chaos_soak_holds_every_invariant() {
        let out = run_soak(&HetSystemConfig::default(), book(), &spec(42)).unwrap();
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.requests > 0);
        assert!(out.report.chaos.any(), "chaos must leave a trace");
    }

    #[test]
    fn soak_is_replayable_from_its_seed() {
        let a = run_soak(&HetSystemConfig::default(), book(), &spec(7)).unwrap();
        let b = run_soak(&HetSystemConfig::default(), book(), &spec(7)).unwrap();
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.report.completed, b.report.completed);
        assert_eq!(a.report.failed_over, b.report.failed_over);
        assert_eq!(a.report.makespan_ns, b.report.makespan_ns);
        assert_eq!(a.report.chaos, b.report.chaos);
        assert_eq!(a.report.slo, b.report.slo);
    }

    #[test]
    fn misconfiguration_reports_the_seed() {
        let mut s = spec(123);
        s.chaos.fallback_to_host = true;
        // A book without host costs cannot arm the fallback.
        let plain = CostBook::measure(
            &TargetEnv::pulp_parallel(),
            &HetSystemConfig::default(),
            &kernels(),
        )
        .expect("kernel measurement must succeed");
        let err = run_soak(&HetSystemConfig::default(), plain, &s).unwrap_err();
        assert!(err.contains("seed=123"), "{err}");
        assert!(err.contains("host"), "{err}");
    }

    #[test]
    fn churn_timeline_covers_the_window() {
        let t = spec(1).timeline();
        assert_eq!(t.flushes, vec![250_000_000, 500_000_000, 750_000_000]);
        assert_eq!(t.blackouts.len(), 1);
    }
}
