//! The serving pool: admission control, kernel-aware batching, weighted
//! fair dispatch over simulated accelerator workers.
//!
//! # Determinism
//!
//! A serve run is a discrete-event simulation on a virtual nanosecond
//! clock. Every scheduling decision is a pure function of the request
//! stream and the pool state — no wall clock, no thread timing. The only
//! parallelism is [`CostBook::measure`], which fans the per-kernel
//! cluster simulations out with `ulp_par::par_map`; `par_map` is
//! order-preserving and each simulation is independent, so the book (and
//! everything downstream of it) is identical under any `--jobs` setting.
//! Chaos draws ([`ChaosConfig`]) come from per-worker seeded streams
//! that advance exactly once per assessed frame, so a faulty run is just
//! as replayable as a clean one.
//!
//! # Why batching wins
//!
//! A cold offload pays the program upload (text + rodata + constants)
//! before the first payload frame moves. Serial per-request dispatch
//! interleaves kernels on each worker, so residency thrashes and nearly
//! every request pays that upload. A kernel-aware batch ships the binary
//! once for N payloads and threads all N through one shared pipeline
//! [`Schedule`](ulp_offload::PipelineConfig), overlapping request k+1's
//! input stream under request k's compute — the two amortizations
//! arXiv:2404.01908 and arXiv:2505.05911 identify.

use std::collections::BTreeMap;

use ulp_kernels::{Benchmark, TargetEnv};
use ulp_link::FaultInjector;
use ulp_offload::{
    HetSystem, HetSystemConfig, OffloadCost, OffloadOptions, PipelineConfig, PlannedJob,
};
use ulp_par::par_map;
use ulp_trace::{Component, EventKind, Tracer};

use crate::autoscale::{AutoscalePolicy, ScaleDecision, ScaleEvent};
use crate::chaos::{
    degrade, BatchFate, ChaosConfig, ChaosStats, DispatchJob, LinkTiming, Timeline,
};
use crate::error::ServeError;
use crate::metrics::{
    percentile_ns, LatencyStats, OutcomeKind, RequestOutcome, ServeReport, SloLedger, TenantReport,
};
use crate::request::{ServeRequest, TenantSpec};

/// One measured kernel of a [`CostBook`].
#[derive(Clone, Debug)]
struct BookEntry {
    benchmark: Benchmark,
    cost: OffloadCost,
    /// Serialized one-iteration offload estimate, ns (fair-share charge).
    est_ns: u64,
    /// Host-only cost of one iteration, ns; 0 = never measured.
    host_est_ns: u64,
}

/// Measured offload costs of the kernels a pool serves, plus the serial
/// cost estimate the fair scheduler charges tenants with.
///
/// Measuring runs two cluster simulations per kernel, which is the
/// expensive part of bringing a pool up — [`CostBook::measure`] fans it
/// out across kernels with `ulp-par`. Scheduling then never touches the
/// cluster again: batches are priced with the pure
/// [`HetSystem::plan_queue`] planner against these cached costs.
///
/// [`CostBook::measure_with_host`] additionally prices each kernel on
/// the host alone, which arms the chaos layer's host fallback
/// ([`ChaosConfig::fallback_to_host`]).
#[derive(Clone, Debug)]
pub struct CostBook {
    entries: Vec<BookEntry>,
}

impl CostBook {
    /// Measures every kernel in `benchmarks` (in parallel, one scratch
    /// [`HetSystem`] per kernel) and records its cost parameters plus
    /// the serialized one-iteration cost estimate.
    ///
    /// # Errors
    ///
    /// Returns the first measurement error any kernel hit.
    pub fn measure(
        env: &TargetEnv,
        config: &HetSystemConfig,
        benchmarks: &[Benchmark],
    ) -> Result<CostBook, ServeError> {
        Self::measure_inner(env, None, config, benchmarks)
    }

    /// Like [`CostBook::measure`], but also runs each kernel's
    /// host-targeted build on the MCU alone and records its per-iteration
    /// cost — required before a pool may fail batches over to the host.
    ///
    /// # Errors
    ///
    /// Returns the first measurement error any kernel hit (accelerator
    /// or host side).
    pub fn measure_with_host(
        env: &TargetEnv,
        host_env: &TargetEnv,
        config: &HetSystemConfig,
        benchmarks: &[Benchmark],
    ) -> Result<CostBook, ServeError> {
        Self::measure_inner(env, Some(host_env), config, benchmarks)
    }

    fn measure_inner(
        env: &TargetEnv,
        host_env: Option<&TargetEnv>,
        config: &HetSystemConfig,
        benchmarks: &[Benchmark],
    ) -> Result<CostBook, ServeError> {
        let measured = par_map(benchmarks, |_, &b| -> Result<_, ServeError> {
            let mut sys = HetSystem::new(config.clone());
            let build = b.build(env);
            let cost = sys.measure_cost(&build)?;
            let est = sys.plan_queue(
                &[PlannedJob {
                    cost: &cost,
                    opts: OffloadOptions::default(),
                    ship_binary: true,
                }],
                PipelineConfig::default(),
            );
            let est_ns = (est.serialized_seconds * 1e9).round() as u64;
            let host_est_ns = match host_env {
                Some(henv) => {
                    let host = sys.run_on_host(&b.build(henv))?;
                    ((host.seconds * 1e9).round() as u64).max(1)
                }
                None => 0,
            };
            Ok(BookEntry {
                benchmark: b,
                cost,
                est_ns,
                host_est_ns,
            })
        });
        let mut entries = Vec::with_capacity(benchmarks.len());
        for r in measured {
            entries.push(r?);
        }
        Ok(CostBook { entries })
    }

    /// The measured cost of one kernel.
    ///
    /// # Panics
    ///
    /// Panics when the kernel was not measured — requests for unknown
    /// kernels are a pool configuration bug. [`ServePool::run`] validates
    /// its whole request stream up front and reports
    /// [`ServeError::UnknownKernel`] instead of panicking.
    #[must_use]
    pub fn cost(&self, b: Benchmark) -> &OffloadCost {
        &self.entry(b).cost
    }

    /// Serialized single-iteration cost estimate of one kernel, in
    /// nanoseconds — the fair scheduler's charging unit.
    #[must_use]
    pub fn est_ns(&self, b: Benchmark, iterations: usize) -> u64 {
        self.entry(b)
            .est_ns
            .saturating_mul(iterations.max(1) as u64)
    }

    /// Host-only cost of one iteration of a kernel, in nanoseconds.
    /// Zero when the book was built without host measurements.
    #[must_use]
    pub fn host_est_ns(&self, b: Benchmark) -> u64 {
        self.index_of(b).map_or(0, |i| self.entries[i].host_est_ns)
    }

    /// Kernels in the book, in measurement order.
    #[must_use]
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        self.entries.iter().map(|e| e.benchmark).collect()
    }

    /// Position of a kernel in the book, or `None` if unmeasured.
    #[must_use]
    pub fn index_of(&self, b: Benchmark) -> Option<usize> {
        self.entries.iter().position(|e| e.benchmark == b)
    }

    /// Position of a kernel, as a contextful error for soak harnesses.
    fn try_index(&self, b: Benchmark) -> Result<usize, ServeError> {
        self.index_of(b)
            .ok_or(ServeError::UnknownKernel { kernel: b.name() })
    }

    fn entry(&self, b: Benchmark) -> &BookEntry {
        self.entries
            .iter()
            .find(|e| e.benchmark == b)
            .expect("benchmark not in cost book")
    }
}

/// How the pool forms batches.
#[derive(Clone, Copy, Debug)]
pub enum BatchPolicy {
    /// One request per dispatch — the per-request baseline the paper's
    /// runtime implements today.
    Serial,
    /// Coalesce same-kernel requests, up to `max_batch` per dispatch.
    KernelAware {
        /// Largest batch a single dispatch may carry (≥ 1).
        max_batch: usize,
    },
}

impl BatchPolicy {
    fn max_batch(self) -> usize {
        match self {
            BatchPolicy::Serial => 1,
            BatchPolicy::KernelAware { max_batch } => max_batch.max(1),
        }
    }
}

/// Pressure-scaled admission pricing per SLO class.
///
/// Queue-cap admission control is per tenant and class-blind; pricing
/// adds a group-wide gate: each arrival is charged against the pool's
/// current pressure (total queued depth relative to what the active
/// workers can absorb), and a class is admitted only while pressure sits
/// under its ceiling. Ceilings descend by class rank, so under load
/// batch traffic is shed first, standard next, and interactive last —
/// exactly the triage a fleet front-end applies before requests ever
/// reach a node group. Disabled by default; a disabled config leaves
/// every run byte-identical to a pool without it.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionPricing {
    /// Master switch; `false` bypasses pricing entirely.
    pub enabled: bool,
    /// Queued requests per active worker considered 100% pressure.
    pub target_depth_per_worker: u32,
    /// Admission ceiling per class rank (interactive, standard, batch)
    /// in percent of target pressure: a class-`c` arrival is admitted
    /// only while pressure is strictly below `ceiling_pct[c]`.
    pub ceiling_pct: [u32; 3],
}

impl Default for AdmissionPricing {
    fn default() -> Self {
        AdmissionPricing {
            enabled: false,
            target_depth_per_worker: 32,
            ceiling_pct: [100, 75, 50],
        }
    }
}

impl AdmissionPricing {
    /// A pricing config with the default thresholds switched on.
    #[must_use]
    pub fn enabled() -> Self {
        AdmissionPricing {
            enabled: true,
            ..AdmissionPricing::default()
        }
    }
}

/// Static configuration of a [`ServePool`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Number of accelerator workers.
    pub pool: usize,
    /// Batching policy.
    pub policy: BatchPolicy,
    /// Weighted fair scheduling across tenants; `false` degrades to
    /// global FIFO (the fairness regression's adversary).
    pub fair: bool,
    /// Allow a batch started by one tenant to be topped up with other
    /// tenants' same-kernel requests.
    pub cross_tenant: bool,
    /// Pipeline configuration every dispatch runs under.
    pub pipeline: PipelineConfig,
    /// Host cycles one dispatch transaction costs on top of the modeled
    /// offload: runtime entry, descriptor and map-list construction,
    /// completion interrupt, and response marshalling. The offload
    /// model's `sync_seconds` covers only the two GPIO edges per
    /// iteration; the serving front-end pays this full software path
    /// once per *dispatch*, which is exactly the overhead arXiv:2404.01908
    /// and arXiv:2505.05911 measure (10²–10⁴ host cycles per offload)
    /// and amortize by batching. Default 8 000 cycles — 0.5 ms on the
    /// 16 MHz STM32-L476.
    pub dispatch_overhead_cycles: u64,
    /// Autoscaling policy. `None` (the default) pins the active worker
    /// count at `pool`; `Some` allocates `max_workers` workers up front,
    /// starts `pool` of them active, and lets the policy grow/shrink the
    /// active prefix at its decision cadence.
    pub autoscale: Option<AutoscalePolicy>,
    /// Pressure-scaled per-class admission pricing (off by default).
    pub admission: AdmissionPricing,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            pool: 1,
            policy: BatchPolicy::KernelAware { max_batch: 8 },
            fair: true,
            cross_tenant: true,
            pipeline: PipelineConfig::enabled(),
            dispatch_overhead_cycles: 8_000,
            autoscale: None,
            admission: AdmissionPricing::default(),
        }
    }
}

/// One simulated accelerator worker. Workers carry scheduling state
/// only — batch pricing goes through the pool's single shared planner —
/// so a 1024-worker fleet group costs vectors of three scalars, not a
/// thousand cluster models.
struct Worker {
    resident: Option<Benchmark>,
    free_at_ns: u64,
    busy_ns: u64,
}

struct TenantState {
    spec: TenantSpec,
    queue: Vec<ServeRequest>,
    vtime: u64,
    latencies: Vec<u64>,
    rejected: u64,
    deadline_misses: u64,
    failed_over: u64,
    failed: u64,
}

/// Healthy price of one dispatch shape, cached so a million-request soak
/// calls the queue planner once per distinct (kernel, batch size, ship)
/// triple instead of once per dispatch.
#[derive(Clone, Copy, Debug)]
struct Price {
    /// Fault-free service time including dispatch overhead, ns.
    base_ns: u64,
    /// Accelerator compute portion (arms the automatic watchdog), ns.
    compute_ns: u64,
}

/// The multi-tenant serving front-end: a pool of simulated accelerator
/// workers behind bounded per-tenant queues.
///
/// See the [module docs](crate::server) for the scheduling model;
/// [`ServePool::run`] executes one request stream to completion.
/// [`ServePool::with_chaos`] and [`ServePool::with_timeline`] attach
/// fault injection and scripted disruptions; with neither attached a run
/// is bit-identical to a chaos-free build of the pool.
pub struct ServePool {
    cfg: ServeConfig,
    book: CostBook,
    tenants: Vec<TenantSpec>,
    workers: Vec<Worker>,
    /// Shared pure planner all batch pricing goes through; workers are
    /// identical, so one model prices every dispatch shape.
    planner: HetSystem,
    mcu_hz: f64,
    tracer: Tracer,
    chaos: ChaosConfig,
    timeline: Timeline,
    timing: LinkTiming,
    price_cache: BTreeMap<(usize, usize, bool), Price>,
}

impl ServePool {
    /// Builds a pool of `cfg.pool` identical workers (with autoscaling
    /// configured, `autoscale.max_workers` workers of which `cfg.pool`
    /// start active).
    #[must_use]
    pub fn new(
        sys_config: &HetSystemConfig,
        tenants: Vec<TenantSpec>,
        book: CostBook,
        cfg: ServeConfig,
    ) -> Self {
        let alloc = cfg
            .autoscale
            .map_or(cfg.pool, |p| p.max_workers.max(cfg.pool))
            .max(1);
        let workers = (0..alloc)
            .map(|_| Worker {
                resident: None,
                free_at_ns: 0,
                busy_ns: 0,
            })
            .collect();
        ServePool {
            cfg,
            book,
            tenants,
            workers,
            planner: HetSystem::new(sys_config.clone()),
            mcu_hz: sys_config.mcu_freq_hz,
            tracer: Tracer::disabled(),
            chaos: ChaosConfig::default(),
            timeline: Timeline::default(),
            timing: LinkTiming::new(sys_config),
            price_cache: BTreeMap::new(),
        }
    }

    /// Attaches a tracer; the run emits `batch` / `queue-depth` events
    /// and per-worker utilization counters into it.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches per-worker fault injection. An inactive config (no
    /// profiles, or all-zero rates) leaves every run bit-identical to a
    /// pool without it.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }

    /// Attaches a scripted disruption timeline (worker blackouts and
    /// residency flushes).
    #[must_use]
    pub fn with_timeline(mut self, timeline: Timeline) -> Self {
        self.timeline = timeline;
        self
    }

    /// The cost book the pool schedules against.
    #[must_use]
    pub fn book(&self) -> &CostBook {
        &self.book
    }

    /// Runs one request stream (sorted by arrival) to completion and
    /// reports what happened. Worker state is reset first, so repeated
    /// runs of the same stream produce identical reports.
    ///
    /// The stream is validated up front: every request must name a
    /// tenant inside the tenant table and a kernel the cost book
    /// measured, and — when fault injection could fail a batch over to
    /// the host — every requested kernel must carry a host cost. A
    /// misconfiguration is reported before any virtual time elapses, so
    /// soak harnesses can attach the workload seed to the error.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`], [`ServeError::UnknownKernel`], or
    /// [`ServeError::MissingHostCost`] on a request stream the pool was
    /// not configured for.
    pub fn run(&mut self, requests: &[ServeRequest]) -> Result<ServeReport, ServeError> {
        let need_host = self.chaos.is_active() && self.chaos.fallback_to_host;
        for r in requests {
            if r.tenant >= self.tenants.len() {
                return Err(ServeError::UnknownTenant {
                    index: r.tenant,
                    tenants: self.tenants.len(),
                });
            }
            let bidx = self.book.try_index(r.benchmark)?;
            if need_host && self.book.entries[bidx].host_est_ns == 0 {
                return Err(ServeError::MissingHostCost {
                    kernel: r.benchmark.name(),
                });
            }
        }

        for w in &mut self.workers {
            w.resident = None;
            w.free_at_ns = 0;
            w.busy_ns = 0;
        }
        let mut tenants: Vec<TenantState> = self
            .tenants
            .iter()
            .map(|spec| TenantState {
                spec: spec.clone(),
                queue: Vec::new(),
                vtime: 0,
                latencies: Vec::new(),
                rejected: 0,
                deadline_misses: 0,
                failed_over: 0,
                failed: 0,
            })
            .collect();
        let mut injectors: Vec<Option<FaultInjector>> = (0..self.workers.len())
            .map(|i| self.chaos.injector_for(i))
            .collect();

        let max_batch = self.cfg.policy.max_batch();
        let mut next_arrival = 0usize;
        let mut now = 0u64;
        let mut vnow = 0u64; // fairness floor for newly-backlogged tenants
        let mut batch_hist: Vec<u64> = Vec::new();
        let mut uploads = 0u64;
        let mut makespan = 0u64;
        let mut max_depth = 0usize;
        let mut flush_idx = 0usize;
        let mut admitted = 0u64;
        let mut completed = 0u64;
        let mut stats = ChaosStats::default();
        let mut ledger = SloLedger::new(tenants.len());
        let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(requests.len());

        // Autoscaler state: `active` gates dispatch to the worker prefix
        // `workers[..active]`; deactivated workers drain whatever batch
        // they already hold. Decisions fire at fixed virtual-time
        // instants, so the decision log is a pure function of the run.
        let auto = self.cfg.autoscale;
        let mut active = auto.map_or(self.workers.len(), |p| p.clamp(self.cfg.pool));
        let mut next_decision = auto.map(|p| p.interval_ns);
        let mut cooldown_until = 0u64;
        let mut window_lat: Vec<u64> = Vec::new();
        let mut scale_events: Vec<ScaleEvent> = Vec::new();
        let mut capacity_ns = 0u64;
        let mut priced_out = 0u64;

        loop {
            // Apply residency-churn flushes that have come due: every
            // worker forgets its resident binary, so the next dispatch
            // pays the upload again.
            while flush_idx < self.timeline.flushes.len() && self.timeline.flushes[flush_idx] <= now
            {
                flush_idx += 1;
                stats.residency_flushes += 1;
                for w in &mut self.workers {
                    w.resident = None;
                }
            }

            // Evaluate autoscaling decisions that have come due. The
            // decision window's p99 covers completions recorded since the
            // previous decision; the window resets whether or not an
            // action fires, so each decision sees fresh evidence.
            if let Some(policy) = auto {
                while let Some(nd) = next_decision.filter(|&nd| nd <= now) {
                    let depth: usize = tenants.iter().map(|t| t.queue.len()).sum();
                    let mut window = std::mem::take(&mut window_lat);
                    window.sort_unstable();
                    let p99 = percentile_ns(&window, 99.0);
                    if nd >= cooldown_until {
                        if let ScaleDecision::Scale(to, reason) = policy.decide(active, depth, p99)
                        {
                            scale_events.push(ScaleEvent {
                                at_ns: nd,
                                group: 0,
                                from: active,
                                to,
                                queue_depth: depth,
                                window_p99_ns: p99,
                                reason,
                            });
                            self.tracer.emit(
                                Component::Host,
                                EventKind::Scale {
                                    from: active as u32,
                                    to: to as u32,
                                },
                                nd,
                                0,
                            );
                            active = to;
                            cooldown_until = nd + policy.cooldown_ns;
                        }
                    }
                    next_decision = Some(nd + policy.interval_ns);
                }
            }

            // Admit everything that has arrived by `now`.
            while next_arrival < requests.len() && requests[next_arrival].arrival_ns <= now {
                let r = requests[next_arrival];
                next_arrival += 1;
                let priced = self.cfg.admission.enabled && {
                    let depth: usize = tenants.iter().map(|t| t.queue.len()).sum();
                    let target = (active as u64
                        * u64::from(self.cfg.admission.target_depth_per_worker))
                    .max(1);
                    let pressure_pct = depth as u64 * 100 / target;
                    pressure_pct
                        >= u64::from(self.cfg.admission.ceiling_pct[r.class.rank() as usize])
                };
                let t = &mut tenants[r.tenant];
                if priced || t.queue.len() >= t.spec.queue_cap {
                    priced_out += u64::from(priced);
                    t.rejected += 1;
                    let o = RequestOutcome {
                        id: r.id,
                        tenant: r.tenant,
                        class: r.class,
                        benchmark: r.benchmark,
                        arrival_ns: r.arrival_ns,
                        done_ns: r.arrival_ns,
                        kind: OutcomeKind::Rejected,
                    };
                    ledger.post(&o);
                    outcomes.push(o);
                    continue;
                }
                admitted += 1;
                if t.queue.is_empty() {
                    // A tenant returning from idle starts at the current
                    // fairness floor instead of spending banked credit.
                    t.vtime = t.vtime.max(vnow);
                }
                t.queue.push(r);
            }
            max_depth = max_depth.max(tenants.iter().map(|t| t.queue.len()).sum());

            // Dispatch while an active worker is idle and work is queued.
            while tenants.iter().any(|t| !t.queue.is_empty()) {
                let Some(widx) = self.idle_worker(&tenants, now, active) else {
                    // Stalled purely by the timeline (an otherwise-idle
                    // worker exists but is blacked out)? Count it — the
                    // scheduler will wake at the blackout's end.
                    if self.workers[..active]
                        .iter()
                        .enumerate()
                        .any(|(i, w)| w.free_at_ns <= now && self.timeline.blacked_out(i, now))
                    {
                        stats.blackout_windows += 1;
                    }
                    break;
                };
                let batch = self.take_batch(&mut tenants, &mut vnow, max_batch);
                let kernel = batch[0].benchmark;
                let bidx = self.book.try_index(kernel)?;
                let ship = self.workers[widx].resident != Some(kernel);
                let iterations: usize = batch.iter().map(|r| r.iterations.max(1)).sum();
                let price = self.price(bidx, iterations, ship);

                let (service_ns, fate) = match injectors[widx].as_mut() {
                    Some(inj) => {
                        let entry = &self.book.entries[bidx];
                        let d = degrade(
                            inj,
                            &self.chaos,
                            &self.timing,
                            &DispatchJob {
                                cost: &entry.cost,
                                iterations,
                                ship,
                                base_ns: price.base_ns,
                                compute_ns: price.compute_ns,
                                host_est_ns: entry.host_est_ns,
                            },
                        );
                        stats.retransmissions += d.retransmissions;
                        stats.watchdog_fires += d.watchdog_fires;
                        stats.late_events += d.late_events;
                        (d.service_ns, d.fate)
                    }
                    None => (price.base_ns, BatchFate::Served),
                };

                let w = &mut self.workers[widx];
                // A failed dispatch leaves the accelerator in an unknown
                // state; the watchdog restart wipes residency.
                w.resident = (fate == BatchFate::Served).then_some(kernel);
                w.free_at_ns = now + service_ns;
                w.busy_ns += service_ns;
                uploads += u64::from(ship && fate == BatchFate::Served);
                makespan = makespan.max(w.free_at_ns);

                if batch_hist.len() < batch.len() {
                    batch_hist.resize(batch.len(), 0);
                }
                batch_hist[batch.len() - 1] += 1;
                let depth: usize = tenants.iter().map(|t| t.queue.len()).sum();
                self.tracer.emit(
                    Component::Worker(widx as u8),
                    EventKind::Batch {
                        size: batch.len() as u32,
                    },
                    now,
                    service_ns,
                );
                self.tracer.emit(
                    Component::Worker(widx as u8),
                    EventKind::QueueDepth {
                        depth: depth as u32,
                    },
                    now,
                    0,
                );

                let done = now + service_ns;
                let kind = match fate {
                    BatchFate::Served => OutcomeKind::Completed,
                    BatchFate::FailedOver => OutcomeKind::FailedOver,
                    BatchFate::Failed => OutcomeKind::Failed,
                };
                for r in &batch {
                    let t = &mut tenants[r.tenant];
                    match fate {
                        BatchFate::Served | BatchFate::FailedOver => {
                            let latency = done - r.arrival_ns;
                            t.latencies.push(latency);
                            if auto.is_some() {
                                window_lat.push(latency);
                            }
                            if latency > r.class.deadline_ns() {
                                t.deadline_misses += 1;
                            }
                            if fate == BatchFate::FailedOver {
                                t.failed_over += 1;
                            } else {
                                completed += 1;
                            }
                        }
                        BatchFate::Failed => t.failed += 1,
                    }
                    let o = RequestOutcome {
                        id: r.id,
                        tenant: r.tenant,
                        class: r.class,
                        benchmark: r.benchmark,
                        arrival_ns: r.arrival_ns,
                        done_ns: done,
                        kind,
                    };
                    ledger.post(&o);
                    outcomes.push(o);
                }
                match fate {
                    BatchFate::FailedOver => {
                        stats.fallback_batches += 1;
                        stats.fallback_requests += batch.len() as u64;
                    }
                    BatchFate::Failed => stats.failed_requests += batch.len() as u64,
                    BatchFate::Served => {}
                }
            }

            // Advance the virtual clock to the next event. A scheduler
            // stalled by blackouts with work still queued must wake when
            // the earliest blackout lifts, or requests would strand.
            let queued = tenants.iter().any(|t| !t.queue.is_empty());
            let next_t = [
                (next_arrival < requests.len()).then(|| requests[next_arrival].arrival_ns),
                self.workers
                    .iter()
                    .filter(|w| w.free_at_ns > now)
                    .map(|w| w.free_at_ns)
                    .min(),
                if queued {
                    self.timeline.next_blackout_end(now)
                } else {
                    None
                },
            ]
            .into_iter()
            .flatten()
            .min();
            match next_t {
                Some(t) => {
                    // A pending autoscale decision wakes the scheduler
                    // early, but never keeps a drained run alive: with no
                    // other event left the run ends and so does scaling.
                    let t = match next_decision {
                        Some(nd) if nd < t => nd,
                        _ => t,
                    };
                    if auto.is_some() {
                        capacity_ns += active as u64 * (t - now);
                    }
                    now = t;
                }
                None => break, // no arrivals, no busy workers: drained
            }
        }

        let stranded: u64 = tenants.iter().map(|t| t.queue.len() as u64).sum();
        let mut all: Vec<u64> = Vec::new();
        for t in &tenants {
            all.extend_from_slice(&t.latencies);
        }
        for (i, w) in self.workers.iter().enumerate() {
            self.tracer
                .set_counter(Component::Worker(i as u8), w.busy_ns, makespan);
        }
        for inj in injectors.iter().flatten() {
            stats.absorb(inj.stats());
        }
        Ok(ServeReport {
            admitted,
            completed,
            rejected: tenants.iter().map(|t| t.rejected).sum(),
            failed_over: tenants.iter().map(|t| t.failed_over).sum(),
            failed: tenants.iter().map(|t| t.failed).sum(),
            stranded,
            deadline_misses: tenants.iter().map(|t| t.deadline_misses).sum(),
            makespan_ns: makespan,
            latency: LatencyStats::of(&all),
            tenants: tenants
                .iter()
                .map(|t| TenantReport {
                    name: t.spec.name.clone(),
                    weight: t.spec.weight,
                    latency: LatencyStats::of(&t.latencies),
                    rejected: t.rejected,
                    deadline_misses: t.deadline_misses,
                    failed_over: t.failed_over,
                    failed: t.failed,
                })
                .collect(),
            batch_hist,
            uploads,
            worker_busy_ns: self.workers.iter().map(|w| w.busy_ns).collect(),
            max_queue_depth: max_depth,
            chaos: stats,
            slo: ledger,
            outcomes,
            scale_events,
            capacity_ns,
            priced_out,
        })
    }

    /// Picks an idle, non-blacked-out worker from the active prefix,
    /// preferring one whose resident kernel will match the next dispatch
    /// (lowest index wins ties for determinism). `None` when every
    /// active worker is busy or out.
    fn idle_worker(&self, tenants: &[TenantState], now: u64, active: usize) -> Option<usize> {
        let head = self.head_request(tenants)?;
        let mut first_idle = None;
        for (i, w) in self.workers[..active].iter().enumerate() {
            if w.free_at_ns > now || self.timeline.blacked_out(i, now) {
                continue;
            }
            if w.resident == Some(head.benchmark) {
                return Some(i);
            }
            if first_idle.is_none() {
                first_idle = Some(i);
            }
        }
        first_idle
    }

    /// The request the next batch will be built around, under the
    /// configured discipline.
    fn head_request(&self, tenants: &[TenantState]) -> Option<ServeRequest> {
        if self.cfg.fair {
            let t = tenants
                .iter()
                .filter(|t| !t.queue.is_empty())
                .min_by_key(|t| t.vtime)?;
            t.queue
                .iter()
                .min_by_key(|r| (r.class.rank(), r.arrival_ns, r.id))
                .copied()
        } else {
            tenants
                .iter()
                .flat_map(|t| t.queue.iter())
                .min_by_key(|r| (r.arrival_ns, r.id))
                .copied()
        }
    }

    /// Removes the next batch from the queues: the head request's
    /// kernel, topped up with same-kernel requests (same tenant first,
    /// then — if allowed — other tenants in fairness order). Charges
    /// every request's estimated serial cost to its tenant's virtual
    /// time.
    fn take_batch(
        &self,
        tenants: &mut [TenantState],
        vnow: &mut u64,
        max_batch: usize,
    ) -> Vec<ServeRequest> {
        let head = self.head_request(tenants).expect("queues not empty");
        let kernel = head.benchmark;
        let mut batch: Vec<ServeRequest> = Vec::with_capacity(max_batch);

        let mut tenant_order: Vec<usize> = (0..tenants.len()).collect();
        if self.cfg.fair {
            tenant_order.sort_by_key(|&i| (tenants[i].vtime, i));
        }
        // The head's tenant always leads its own batch.
        tenant_order.retain(|&i| i != head.tenant);
        tenant_order.insert(0, head.tenant);

        for ti in tenant_order {
            if batch.len() >= max_batch {
                break;
            }
            if ti != head.tenant && !self.cfg.cross_tenant {
                break;
            }
            let t = &mut tenants[ti];
            let mut candidates: Vec<(u8, u64, u64)> = t
                .queue
                .iter()
                .filter(|r| r.benchmark == kernel)
                .map(|r| (r.class.rank(), r.arrival_ns, r.id))
                .collect();
            candidates.sort_unstable();
            candidates.truncate(max_batch - batch.len());
            let mut picks: Vec<u64> = candidates.into_iter().map(|(_, _, id)| id).collect();
            picks.sort_unstable();
            if picks.is_empty() {
                continue;
            }
            let mut charged = 0u64;
            let mut taken: Vec<ServeRequest> = Vec::with_capacity(picks.len());
            t.queue.retain(|r| {
                if picks.binary_search(&r.id).is_ok() {
                    charged += self.book.est_ns(r.benchmark, r.iterations);
                    taken.push(*r);
                    false
                } else {
                    true
                }
            });
            *vnow = (*vnow).max(t.vtime);
            t.vtime += charged / u64::from(t.spec.weight.max(1));
            taken.sort_by_key(|r| (r.class.rank(), r.arrival_ns, r.id));
            batch.extend(taken);
        }
        assert!(!batch.is_empty(), "head request must be batched");
        batch
    }

    /// Healthy price of a batch on one worker, via the pure queue
    /// planner with a memo per dispatch shape. A batch is same-kernel by
    /// construction, so it **fuses** into one planned job whose
    /// iteration count is the batch's total payload count: the binary
    /// ships (at most) once, the instruction cache warms once, and every
    /// payload after the first streams through the pipeline schedule at
    /// the steady-state rate. A serial dispatch (batch of one)
    /// degenerates to the ordinary single offload.
    fn price(&mut self, bidx: usize, iterations: usize, ship: bool) -> Price {
        if let Some(&p) = self.price_cache.get(&(bidx, iterations, ship)) {
            return p;
        }
        let job = PlannedJob {
            cost: &self.book.entries[bidx].cost,
            opts: OffloadOptions {
                iterations,
                ..OffloadOptions::default()
            },
            ship_binary: ship,
        };
        let plan = self.planner.plan_queue(&[job], self.cfg.pipeline);
        let overhead_ns = (self.cfg.dispatch_overhead_cycles as f64 * 1e9 / self.mcu_hz).round();
        let price = Price {
            base_ns: (plan.total_seconds * 1e9 + overhead_ns).round() as u64,
            compute_ns: (plan.reports[0].compute_seconds * 1e9).round() as u64,
        };
        self.price_cache.insert((bidx, iterations, ship), price);
        price
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{Blackout, FaultProfile};
    use crate::loadgen::{TenantLoad, WorkloadSpec};

    fn kernels() -> Vec<Benchmark> {
        vec![Benchmark::MatMul, Benchmark::MatMulShort, Benchmark::Cnn]
    }

    fn book() -> CostBook {
        CostBook::measure(
            &TargetEnv::pulp_parallel(),
            &HetSystemConfig::default(),
            &kernels(),
        )
        .expect("kernel measurement must succeed")
    }

    fn host_book() -> CostBook {
        CostBook::measure_with_host(
            &TargetEnv::pulp_parallel(),
            &TargetEnv::host_m4(),
            &HetSystemConfig::default(),
            &kernels(),
        )
        .expect("kernel measurement must succeed")
    }

    fn workload(seed: u64, rate: f64) -> Vec<ServeRequest> {
        WorkloadSpec {
            seed,
            duration_ns: 1_000_000_000,
            tenants: vec![TenantLoad::uniform(TenantSpec::new("t"), rate, &kernels())],
        }
        .generate()
    }

    fn pool(policy: BatchPolicy, book: CostBook) -> ServePool {
        ServePool::new(
            &HetSystemConfig::default(),
            vec![TenantSpec::new("t")],
            book,
            ServeConfig {
                pool: 2,
                policy,
                ..ServeConfig::default()
            },
        )
    }

    #[test]
    fn batching_amortizes_uploads_and_lifts_throughput() {
        let book = book();
        let reqs = workload(3, 400.0);
        let serial = pool(BatchPolicy::Serial, book.clone()).run(&reqs).unwrap();
        let batched = pool(BatchPolicy::KernelAware { max_batch: 8 }, book)
            .run(&reqs)
            .unwrap();
        assert_eq!(serial.completed + serial.rejected, reqs.len() as u64);
        assert!(batched.completed >= serial.completed);
        assert!(
            batched.uploads < serial.uploads,
            "batching must amortize uploads: {} vs {}",
            batched.uploads,
            serial.uploads
        );
        assert!(batched.mean_batch() > 1.0);
        assert!(
            batched.throughput_rps() > serial.throughput_rps(),
            "batched {} rps vs serial {} rps",
            batched.throughput_rps(),
            serial.throughput_rps()
        );
    }

    #[test]
    fn runs_are_repeatable() {
        let reqs = workload(9, 300.0);
        let mut p = pool(BatchPolicy::KernelAware { max_batch: 8 }, book());
        let a = p.run(&reqs).unwrap();
        let b = p.run(&reqs).unwrap();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.latency.p99_ns, b.latency.p99_ns);
        assert_eq!(a.batch_hist, b.batch_hist);
        assert_eq!(a.uploads, b.uploads);
    }

    #[test]
    fn admission_control_rejects_over_cap() {
        let book = book();
        let mut spec = TenantSpec::new("t");
        spec.queue_cap = 2;
        let mut p = ServePool::new(
            &HetSystemConfig::default(),
            vec![spec],
            book,
            ServeConfig {
                pool: 1,
                ..ServeConfig::default()
            },
        );
        // Heavy overload on one worker: the bound must trip.
        let r = p.run(&workload(5, 5_000.0)).unwrap();
        assert!(r.rejected > 0, "queue cap 2 must reject under overload");
        assert!(r.max_queue_depth <= 2);
    }

    #[test]
    fn fair_scheduling_bounds_the_background_tenant() {
        let book = book();
        let bg = TenantSpec::new("bg");
        let hot = TenantSpec::new("hot");
        let mk = |fair: bool| {
            ServePool::new(
                &HetSystemConfig::default(),
                vec![bg.clone(), hot.clone()],
                book.clone(),
                ServeConfig {
                    pool: 2,
                    fair,
                    ..ServeConfig::default()
                },
            )
        };
        let reqs = WorkloadSpec {
            seed: 11,
            duration_ns: 1_000_000_000,
            tenants: vec![
                TenantLoad::uniform(bg.clone(), 30.0, &[Benchmark::MatMul]),
                TenantLoad::uniform(hot.clone(), 600.0, &kernels()),
            ],
        }
        .generate();
        let fair = mk(true).run(&reqs).unwrap();
        let fifo = mk(false).run(&reqs).unwrap();
        let bg_fair = fair.tenants[0].latency.p99_ns;
        let bg_fifo = fifo.tenants[0].latency.p99_ns;
        assert!(
            bg_fair <= bg_fifo,
            "fair p99 {bg_fair} must not exceed FIFO p99 {bg_fifo}"
        );
    }

    #[test]
    fn tracer_records_batches_and_utilization() {
        let tracer = Tracer::enabled();
        let reqs = workload(2, 200.0);
        let mut p = ServePool::new(
            &HetSystemConfig::default(),
            vec![TenantSpec::new("t")],
            book(),
            ServeConfig::default(),
        )
        .with_tracer(tracer.clone());
        let r = p.run(&reqs).unwrap();
        let events = tracer.events();
        let batches = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Batch { .. }))
            .count() as u64;
        assert_eq!(batches, r.batch_hist.iter().sum::<u64>());
        let counters = tracer.counters();
        assert!(counters
            .iter()
            .any(|(c, k)| *c == Component::Worker(0) && k.total == r.makespan_ns));
    }

    #[test]
    fn bad_requests_are_reported_not_panicked() {
        let mut p = pool(BatchPolicy::Serial, book());
        let mut r = workload(1, 50.0);
        r[0].tenant = 9;
        match p.run(&r) {
            Err(ServeError::UnknownTenant {
                index: 9,
                tenants: 1,
            }) => {}
            other => panic!("expected UnknownTenant, got {other:?}"),
        }

        // A chaos pool with host fallback demands host costs up front.
        let mut p = pool(BatchPolicy::Serial, book()).with_chaos(ChaosConfig::uniform(
            1,
            FaultProfile {
                drop_rate: 0.5,
                ..FaultProfile::default()
            },
        ));
        match p.run(&workload(1, 50.0)) {
            Err(ServeError::MissingHostCost { .. }) => {}
            other => panic!("expected MissingHostCost, got {other:?}"),
        }
    }

    #[test]
    fn chaos_conserves_every_request() {
        let reqs = workload(21, 500.0);
        let chaos = ChaosConfig::uniform(
            77,
            FaultProfile {
                bit_error_rate: 1e-5,
                drop_rate: 0.02,
                hang_rate: 0.01,
                ..FaultProfile::default()
            },
        );
        let mut p = pool(BatchPolicy::KernelAware { max_batch: 8 }, host_book()).with_chaos(chaos);
        let r = p.run(&reqs).unwrap();
        assert_eq!(
            r.completed + r.rejected + r.failed_over + r.failed,
            reqs.len() as u64,
            "every request must be accounted for exactly once"
        );
        assert_eq!(r.stranded, 0);
        assert_eq!(r.admitted + r.rejected, reqs.len() as u64);
        assert!(r.chaos.any(), "faults at these rates must leave a trace");
        assert_eq!(r.outcomes.len(), reqs.len());
        assert_eq!(r.slo, SloLedger::recompute(1, &r.outcomes));
    }

    #[test]
    fn certain_hang_fails_over_every_batch() {
        let reqs = workload(4, 100.0);
        let chaos = ChaosConfig::uniform(
            5,
            FaultProfile {
                hang_rate: 1.0,
                ..FaultProfile::default()
            },
        );
        let mut p = pool(BatchPolicy::Serial, host_book()).with_chaos(chaos);
        let r = p.run(&reqs).unwrap();
        assert_eq!(r.completed, 0);
        assert_eq!(r.failed_over + r.rejected, reqs.len() as u64);
        assert!(r.chaos.watchdog_fires > 0);
        assert!(r.chaos.fallback_requests > 0);
    }

    #[test]
    fn blackout_delays_but_strands_nothing() {
        let reqs = workload(6, 200.0);
        let clean = pool(BatchPolicy::Serial, book()).run(&reqs).unwrap();
        let mut p = pool(BatchPolicy::Serial, book()).with_timeline(Timeline {
            blackouts: vec![
                Blackout {
                    worker: 0,
                    start_ns: 0,
                    end_ns: 400_000_000,
                },
                Blackout {
                    worker: 1,
                    start_ns: 0,
                    end_ns: 400_000_000,
                },
            ],
            flushes: Vec::new(),
        });
        let r = p.run(&reqs).unwrap();
        assert_eq!(r.stranded, 0);
        assert_eq!(
            r.completed + r.rejected,
            reqs.len() as u64,
            "a lifted blackout must not lose requests"
        );
        assert!(
            r.latency.p99_ns >= clean.latency.p99_ns,
            "a pool-wide outage cannot make tails better"
        );
        assert!(r.chaos.blackout_windows > 0);
    }

    #[test]
    fn residency_churn_costs_uploads() {
        let reqs = workload(8, 300.0);
        let clean = pool(BatchPolicy::KernelAware { max_batch: 8 }, book())
            .run(&reqs)
            .unwrap();
        let flushes: Vec<u64> = (1..20).map(|i| i * 50_000_000).collect();
        let mut p =
            pool(BatchPolicy::KernelAware { max_batch: 8 }, book()).with_timeline(Timeline {
                blackouts: Vec::new(),
                flushes,
            });
        let churned = p.run(&reqs).unwrap();
        assert!(churned.chaos.residency_flushes > 0);
        assert!(
            churned.uploads > clean.uploads,
            "churn {} uploads must exceed clean {}",
            churned.uploads,
            clean.uploads
        );
    }

    #[test]
    fn inactive_chaos_is_bit_identical_to_none() {
        let reqs = workload(13, 350.0);
        let plain = pool(BatchPolicy::KernelAware { max_batch: 8 }, book())
            .run(&reqs)
            .unwrap();
        let mut p = pool(BatchPolicy::KernelAware { max_batch: 8 }, book())
            .with_chaos(ChaosConfig::uniform(9, FaultProfile::default()))
            .with_timeline(Timeline::default());
        let idle = p.run(&reqs).unwrap();
        assert_eq!(plain.completed, idle.completed);
        assert_eq!(plain.makespan_ns, idle.makespan_ns);
        assert_eq!(plain.batch_hist, idle.batch_hist);
        assert_eq!(plain.uploads, idle.uploads);
        assert_eq!(plain.latency.p99_ns, idle.latency.p99_ns);
        assert!(!idle.chaos.any());
    }

    #[test]
    fn fixed_pool_reports_no_scaling_artifacts() {
        let mut p = pool(BatchPolicy::KernelAware { max_batch: 8 }, book());
        let r = p.run(&workload(17, 300.0)).unwrap();
        assert!(r.scale_events.is_empty());
        assert_eq!(r.capacity_ns, 0);
        assert_eq!(r.priced_out, 0);
    }

    #[test]
    fn autoscaler_grows_under_pressure_and_releases_when_quiet() {
        let book = book();
        let policy = AutoscalePolicy {
            interval_ns: 20_000_000,
            cooldown_ns: 40_000_000,
            ..AutoscalePolicy::new(1, 6)
        };
        let spec = TenantSpec::new("t");
        // A flash crowd in the first 300 ms, then a light tail: the pool
        // must grow into the crowd and hand workers back afterwards.
        let reqs = WorkloadSpec {
            seed: 31,
            duration_ns: 2_000_000_000,
            tenants: vec![TenantLoad::uniform(spec.clone(), 120.0, &kernels())],
        }
        .generate_with_bursts(&[crate::loadgen::Burst {
            tenant: 0,
            start_ns: 0,
            end_ns: 300_000_000,
            factor: 20.0,
        }]);
        let mut p = ServePool::new(
            &HetSystemConfig::default(),
            vec![spec.clone()],
            book.clone(),
            ServeConfig {
                pool: 1,
                autoscale: Some(policy),
                ..ServeConfig::default()
            },
        );
        let scaled = p.run(&reqs).unwrap();
        assert!(
            scaled.scale_events.iter().any(|e| e.to > e.from),
            "the flash crowd must trigger a scale-up: {:?}",
            scaled.scale_events
        );
        assert!(
            scaled.scale_events.iter().any(|e| e.to < e.from),
            "the quiet tail must release workers: {:?}",
            scaled.scale_events
        );
        assert!(scaled.capacity_ns > 0);
        // Cooldown: consecutive actions are at least cooldown_ns apart.
        for w in scaled.scale_events.windows(2) {
            assert!(w[1].at_ns >= w[0].at_ns + policy.cooldown_ns);
        }
        // Extra capacity cannot serve fewer requests than the pinned
        // single-worker pool.
        let pinned = ServePool::new(
            &HetSystemConfig::default(),
            vec![spec],
            book,
            ServeConfig {
                pool: 1,
                ..ServeConfig::default()
            },
        )
        .run(&reqs)
        .unwrap();
        assert!(scaled.completed >= pinned.completed);
    }

    #[test]
    fn admission_pricing_sheds_batch_class_first() {
        let book = book();
        let mut spec = TenantSpec::new("t");
        spec.queue_cap = 10_000; // pricing, not the per-tenant cap, must bind
        let load = TenantLoad {
            class_mix: [1.0, 1.0, 1.0],
            ..TenantLoad::uniform(spec.clone(), 3_000.0, &kernels())
        };
        let reqs = WorkloadSpec {
            seed: 41,
            duration_ns: 1_000_000_000,
            tenants: vec![load],
        }
        .generate();
        let mut p = ServePool::new(
            &HetSystemConfig::default(),
            vec![spec],
            book,
            ServeConfig {
                pool: 1,
                admission: AdmissionPricing::enabled(),
                ..ServeConfig::default()
            },
        );
        let r = p.run(&reqs).unwrap();
        assert!(r.priced_out > 0, "overload must price requests out");
        assert!(r.priced_out <= r.rejected);
        let by_class =
            |rank: usize| -> u64 { r.slo.cells.iter().map(|row| row[rank].rejected).sum() };
        let (interactive, batch) = (by_class(0), by_class(2));
        assert!(
            batch > interactive,
            "batch ({batch}) must shed before interactive ({interactive})"
        );
    }
}
