//! Multi-tenant serving layer for the heterogeneous offload model.
//!
//! The paper exercises the STM32-L476 → PULP offload path one request
//! at a time; the ROADMAP north star is a system serving heavy traffic
//! from many concurrent users. This crate models that front-end:
//!
//! * **Admission control** — bounded per-tenant queues; arrivals past a
//!   tenant's cap are rejected (backpressure) instead of growing an
//!   unbounded backlog.
//! * **Kernel-aware batching** — same-kernel requests coalesce into one
//!   dispatch, so one program upload and one shared pipeline schedule
//!   amortize across N payloads (see [`server`] for why that wins).
//! * **Weighted fairness** — a virtual-time scheduler gives each tenant
//!   service proportional to its weight; one hot tenant cannot starve
//!   the rest.
//! * **Seeded determinism** — the load generator and the scheduler both
//!   run on a virtual clock from `ulp-rng` seeds; reports are
//!   byte-stable across machines and `--jobs` settings.
//! * **Chaos under contract** — per-worker fault injection ([`chaos`]),
//!   scripted disruption timelines (bursts, blackouts, residency
//!   churn), an exact per-tenant × deadline-class SLO-miss ledger, and
//!   an invariant checker ([`invariants`]) that reconciles every
//!   aggregate against raw per-request outcomes. The [`soak`] harness
//!   ties it together for million-request seeded endurance runs.
//! * **Fleet scale** — a [`fleet`] layer shards tenants across node
//!   groups with rendezvous hashing ([`place_tenant`]), each group a
//!   [`ServePool`] that a per-group autoscaler ([`autoscale`]) grows and
//!   shrinks against queue depth and tail latency, with pressure-scaled
//!   per-class admission pricing. Conservation is re-checked **across**
//!   groups ([`invariants::check_fleet`]), and [`trace_replay`] records
//!   any admitted request stream to a versioned format that replays
//!   byte-identically through any scheduler configuration.
//!
//! ```
//! use ulp_kernels::{Benchmark, TargetEnv};
//! use ulp_offload::HetSystemConfig;
//! use ulp_serve::{
//!     CostBook, ServeConfig, ServePool, TenantLoad, TenantSpec, WorkloadSpec,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let env = TargetEnv::pulp_parallel();
//! let config = HetSystemConfig::default();
//! let kernels = [Benchmark::MatMul, Benchmark::Cnn];
//! let book = CostBook::measure(&env, &config, &kernels)?;
//!
//! let tenants = vec![TenantSpec::new("app"), TenantSpec::weighted("batch", 2)];
//! let workload = WorkloadSpec {
//!     seed: 42,
//!     duration_ns: 500_000_000,
//!     tenants: vec![
//!         TenantLoad::uniform(tenants[0].clone(), 60.0, &kernels),
//!         TenantLoad::uniform(tenants[1].clone(), 30.0, &kernels),
//!     ],
//! };
//! let mut pool = ServePool::new(&config, tenants, book, ServeConfig {
//!     pool: 2,
//!     ..ServeConfig::default()
//! });
//! let report = pool.run(&workload.generate())?;
//! assert!(report.completed > 0);
//! assert!(report.throughput_rps() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod autoscale;
pub mod chaos;
mod error;
pub mod fleet;
pub mod invariants;
mod loadgen;
mod metrics;
mod request;
pub mod server;
pub mod soak;
pub mod trace_replay;

pub use autoscale::{render_scale_log, AutoscalePolicy, ScaleDecision, ScaleEvent, ScaleReason};
pub use chaos::{Blackout, ChaosConfig, ChaosStats, FaultProfile, Timeline};
pub use error::ServeError;
pub use fleet::{Fleet, FleetConfig, FleetReport, GroupReport};
pub use loadgen::{Burst, TenantLoad, WorkloadSpec};
pub use metrics::{
    fmt_ms, percentile_ns, LatencyStats, OutcomeKind, RequestOutcome, ServeReport, SloCell,
    SloLedger, TenantReport,
};
pub use request::{DeadlineClass, ServeRequest, TenantSpec};
pub use server::{AdmissionPricing, BatchPolicy, CostBook, ServeConfig, ServePool};
pub use soak::{run_soak, SoakOutcome, SoakSpec};
pub use trace_replay::{TraceRecorder, TraceReplayer};

/// Rendezvous (highest-random-weight) placement of one tenant onto one
/// of `groups` node groups.
///
/// Every (tenant, group) pair gets an independent pseudo-random score —
/// a splitmix64 finalizer over the tenant name's FNV-1a hash xor a
/// per-group salt — and the tenant lands on the highest-scoring group.
/// The property that makes this the fleet's sharding primitive:
/// changing the group count only moves tenants whose winning group
/// appeared or disappeared. Growing `G → G+1` relocates each tenant
/// with probability `1/(G+1)` (only when the new group wins), and
/// shrinking `G+1 → G` relocates exactly the tenants of the removed
/// group — nothing else reshuffles, unlike modulo hashing where almost
/// every tenant moves.
///
/// Placement is a pure function of `(name, groups)`, so every node of a
/// real deployment could compute it locally and agree.
///
/// # Panics
///
/// Panics when `groups` is 0 — a fleet with no node groups cannot place
/// anything.
#[must_use]
pub fn place_tenant(name: &str, groups: usize) -> usize {
    assert!(groups > 0, "cannot place a tenant on zero groups");
    let h = fnv1a_64(name);
    (0..groups)
        .max_by_key(|&g| {
            (
                splitmix64(h ^ (g as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                g,
            )
        })
        .expect("groups > 0")
}

/// [`place_tenant`] over a whole tenant table: `result[i]` is the group
/// of `tenants[i]`.
///
/// # Panics
///
/// Panics when `groups` is 0.
#[must_use]
pub fn place_tenants(tenants: &[TenantSpec], groups: usize) -> Vec<usize> {
    tenants
        .iter()
        .map(|t| place_tenant(&t.name, groups))
        .collect()
}

/// FNV-1a over a tenant name — the same construction the load
/// generator uses to key per-tenant arrival streams.
fn fnv1a_64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: a cheap, well-mixed bijection on `u64` that
/// turns the (correlated) per-group salted hashes into independent
/// scores.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod sharding_tests {
    use super::*;

    #[test]
    fn placement_is_pure_and_in_range() {
        for g in 1..=32 {
            for name in ["a", "tenant-7", "", "the same tenant"] {
                let p = place_tenant(name, g);
                assert!(p < g);
                assert_eq!(p, place_tenant(name, g), "placement must be pure");
            }
        }
    }

    #[test]
    fn shrinking_only_moves_the_removed_groups_tenants() {
        let names: Vec<String> = (0..512).map(|i| format!("tenant-{i}")).collect();
        for g in 2..=9 {
            for name in &names {
                let before = place_tenant(name, g);
                let after = place_tenant(name, g - 1);
                if before < g - 1 {
                    assert_eq!(
                        before,
                        after,
                        "{name}: group {before} still exists at G={}, tenant must not move",
                        g - 1
                    );
                }
            }
        }
    }

    #[test]
    fn growing_moves_a_bounded_fraction_and_only_to_the_new_group() {
        let names: Vec<String> = (0..2048).map(|i| format!("tenant-{i}")).collect();
        for g in 1..=8 {
            let mut moved = 0usize;
            for name in &names {
                let before = place_tenant(name, g);
                let after = place_tenant(name, g + 1);
                if before != after {
                    assert_eq!(
                        after, g,
                        "{name}: a grown fleet only moves tenants onto the new group"
                    );
                    moved += 1;
                }
            }
            // E[moved] = n/(G+1); 2× the expectation is astronomically
            // safe for a fixed population and keeps the bound strict.
            assert!(
                moved <= 2 * names.len() / (g + 1),
                "G={g}: {moved} of {} tenants moved",
                names.len()
            );
            assert!(moved > 0, "G={g}: the new group must win something");
        }
    }

    #[test]
    fn placement_spreads_tenants_across_groups() {
        let groups = 8;
        let mut counts = vec![0usize; groups];
        for i in 0..1024 {
            counts[place_tenant(&format!("tenant-{i}"), groups)] += 1;
        }
        for (g, &c) in counts.iter().enumerate() {
            assert!(c > 0, "group {g} got no tenants out of 1024");
        }
    }
}
