//! Multi-tenant serving layer for the heterogeneous offload model.
//!
//! The paper exercises the STM32-L476 → PULP offload path one request
//! at a time; the ROADMAP north star is a system serving heavy traffic
//! from many concurrent users. This crate models that front-end:
//!
//! * **Admission control** — bounded per-tenant queues; arrivals past a
//!   tenant's cap are rejected (backpressure) instead of growing an
//!   unbounded backlog.
//! * **Kernel-aware batching** — same-kernel requests coalesce into one
//!   dispatch, so one program upload and one shared pipeline schedule
//!   amortize across N payloads (see [`server`] for why that wins).
//! * **Weighted fairness** — a virtual-time scheduler gives each tenant
//!   service proportional to its weight; one hot tenant cannot starve
//!   the rest.
//! * **Seeded determinism** — the load generator and the scheduler both
//!   run on a virtual clock from `ulp-rng` seeds; reports are
//!   byte-stable across machines and `--jobs` settings.
//! * **Chaos under contract** — per-worker fault injection ([`chaos`]),
//!   scripted disruption timelines (bursts, blackouts, residency
//!   churn), an exact per-tenant × deadline-class SLO-miss ledger, and
//!   an invariant checker ([`invariants`]) that reconciles every
//!   aggregate against raw per-request outcomes. The [`soak`] harness
//!   ties it together for million-request seeded endurance runs.
//!
//! ```
//! use ulp_kernels::{Benchmark, TargetEnv};
//! use ulp_offload::HetSystemConfig;
//! use ulp_serve::{
//!     CostBook, ServeConfig, ServePool, TenantLoad, TenantSpec, WorkloadSpec,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let env = TargetEnv::pulp_parallel();
//! let config = HetSystemConfig::default();
//! let kernels = [Benchmark::MatMul, Benchmark::Cnn];
//! let book = CostBook::measure(&env, &config, &kernels)?;
//!
//! let tenants = vec![TenantSpec::new("app"), TenantSpec::weighted("batch", 2)];
//! let workload = WorkloadSpec {
//!     seed: 42,
//!     duration_ns: 500_000_000,
//!     tenants: vec![
//!         TenantLoad::uniform(tenants[0].clone(), 60.0, &kernels),
//!         TenantLoad::uniform(tenants[1].clone(), 30.0, &kernels),
//!     ],
//! };
//! let mut pool = ServePool::new(&config, tenants, book, ServeConfig {
//!     pool: 2,
//!     ..ServeConfig::default()
//! });
//! let report = pool.run(&workload.generate())?;
//! assert!(report.completed > 0);
//! assert!(report.throughput_rps() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod chaos;
mod error;
pub mod invariants;
mod loadgen;
mod metrics;
mod request;
pub mod server;
pub mod soak;

pub use chaos::{Blackout, ChaosConfig, ChaosStats, FaultProfile, Timeline};
pub use error::ServeError;
pub use loadgen::{Burst, TenantLoad, WorkloadSpec};
pub use metrics::{
    fmt_ms, percentile_ns, LatencyStats, OutcomeKind, RequestOutcome, ServeReport, SloCell,
    SloLedger, TenantReport,
};
pub use request::{DeadlineClass, ServeRequest, TenantSpec};
pub use server::{BatchPolicy, CostBook, ServeConfig, ServePool};
pub use soak::{run_soak, SoakOutcome, SoakSpec};
