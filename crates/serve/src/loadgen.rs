//! Seeded, virtual-clock load generation.
//!
//! Arrivals are drawn from per-tenant Poisson processes (exponential
//! interarrival times) on a virtual nanosecond clock, so a workload is a
//! pure function of its seed: no wall clock, no thread timing, no host
//! state leaks into the request stream. The same [`WorkloadSpec`]
//! therefore produces byte-identical request vectors on every machine
//! and under every `--jobs` setting.

use ulp_kernels::Benchmark;
use ulp_rng::XorShiftRng;

use crate::request::{DeadlineClass, ServeRequest, TenantSpec};

/// Offered load of one tenant.
#[derive(Clone, Debug)]
pub struct TenantLoad {
    /// Identity, weight, and queue bound.
    pub spec: TenantSpec,
    /// Mean offered load in requests per second of virtual time.
    pub rate_rps: f64,
    /// Kernel mix: `(benchmark, weight)` pairs; weights need not sum
    /// to 1. Empty mixes are rejected by [`WorkloadSpec::generate`].
    pub kernel_mix: Vec<(Benchmark, f64)>,
    /// Relative shares of interactive / standard / batch requests.
    pub class_mix: [f64; 3],
    /// Iterations each request asks for.
    pub iterations: usize,
}

impl TenantLoad {
    /// A single-kernel, standard-class tenant.
    #[must_use]
    pub fn uniform(spec: TenantSpec, rate_rps: f64, kernels: &[Benchmark]) -> Self {
        TenantLoad {
            spec,
            rate_rps,
            kernel_mix: kernels.iter().map(|&b| (b, 1.0)).collect(),
            class_mix: [0.0, 1.0, 0.0],
            iterations: 1,
        }
    }
}

/// A complete, seeded workload description.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Seed of the arrival processes.
    pub seed: u64,
    /// Arrivals are generated while the virtual clock is below this.
    pub duration_ns: u64,
    /// Participating tenants.
    pub tenants: Vec<TenantLoad>,
}

impl WorkloadSpec {
    /// Generates the merged request stream, sorted by arrival instant
    /// (ties broken by tenant index), with ids assigned in that order.
    ///
    /// # Panics
    ///
    /// Panics if a tenant has an empty kernel mix, a non-positive rate,
    /// or an all-zero class mix — those are configuration bugs, not
    /// runtime conditions.
    #[must_use]
    pub fn generate(&self) -> Vec<ServeRequest> {
        let mut all: Vec<ServeRequest> = Vec::new();
        for (tenant_idx, load) in self.tenants.iter().enumerate() {
            assert!(!load.kernel_mix.is_empty(), "empty kernel mix");
            assert!(load.rate_rps > 0.0, "non-positive rate");
            let class_total: f64 = load.class_mix.iter().sum();
            assert!(class_total > 0.0, "all-zero class mix");

            // Independent stream per tenant, keyed on the tenant *name*:
            // reordering tenants in the spec does not reshuffle another
            // tenant's arrivals.
            let mut rng = XorShiftRng::seed_from_u64(self.seed ^ fnv1a(&load.spec.name));
            let mean_gap_ns = 1e9 / load.rate_rps;
            let mut t = 0.0f64;
            loop {
                // Exponential interarrival; 1-u keeps ln() off zero.
                let u = rng.next_f64();
                t += -((1.0 - u).ln()) * mean_gap_ns;
                if t >= self.duration_ns as f64 {
                    break;
                }
                let benchmark = pick_weighted(&mut rng, &load.kernel_mix);
                let class = pick_class(&mut rng, load.class_mix, class_total);
                all.push(ServeRequest {
                    id: 0, // assigned after the merge sort
                    tenant: tenant_idx,
                    benchmark,
                    iterations: load.iterations.max(1),
                    class,
                    arrival_ns: t as u64,
                });
            }
        }
        all.sort_by_key(|r| (r.arrival_ns, r.tenant));
        for (i, r) in all.iter_mut().enumerate() {
            r.id = i as u64;
        }
        all
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn pick_weighted(rng: &mut XorShiftRng, mix: &[(Benchmark, f64)]) -> Benchmark {
    let total: f64 = mix.iter().map(|(_, w)| *w).sum();
    let mut x = rng.next_f64() * total;
    for &(b, w) in mix {
        if x < w {
            return b;
        }
        x -= w;
    }
    mix[mix.len() - 1].0
}

fn pick_class(rng: &mut XorShiftRng, mix: [f64; 3], total: f64) -> DeadlineClass {
    let mut x = rng.next_f64() * total;
    for (i, &w) in mix.iter().enumerate() {
        if x < w {
            return DeadlineClass::ALL[i];
        }
        x -= w;
    }
    DeadlineClass::Batch
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            seed: 7,
            duration_ns: 2_000_000_000,
            tenants: vec![
                TenantLoad::uniform(TenantSpec::new("a"), 40.0, &[Benchmark::MatMul]),
                TenantLoad::uniform(
                    TenantSpec::new("b"),
                    25.0,
                    &[Benchmark::Cnn, Benchmark::Hog],
                ),
            ],
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec().generate();
        let b = spec().generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_ns, y.arrival_ns);
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.benchmark, y.benchmark);
            assert_eq!(x.class, y.class);
        }
    }

    #[test]
    fn arrivals_are_sorted_with_sequential_ids() {
        let reqs = spec().generate();
        assert!(!reqs.is_empty());
        for (i, w) in reqs.windows(2).enumerate() {
            assert!(w[0].arrival_ns <= w[1].arrival_ns);
            assert_eq!(w[0].id, i as u64);
        }
    }

    #[test]
    fn rate_roughly_matches_offered_load() {
        // 40 + 25 rps over 2 s ⇒ ≈ 130 requests; allow wide slack.
        let n = spec().generate().len();
        assert!((60..=220).contains(&n), "got {n} arrivals");
    }

    #[test]
    fn tenant_streams_are_independent() {
        let base = spec().generate();
        let mut reordered = spec();
        reordered.tenants.reverse();
        let swapped = reordered.generate();
        let a_base: Vec<u64> = base
            .iter()
            .filter(|r| r.tenant == 0)
            .map(|r| r.arrival_ns)
            .collect();
        // Tenant "a" is index 1 after the swap but keeps its arrivals.
        let a_swapped: Vec<u64> = swapped
            .iter()
            .filter(|r| r.tenant == 1)
            .map(|r| r.arrival_ns)
            .collect();
        assert_eq!(a_base, a_swapped);
    }
}
