//! Queue-depth / tail-latency autoscaling of a pool's active worker set.
//!
//! The autoscaler is evaluated at fixed intervals of **virtual time**
//! inside [`ServePool::run`](crate::ServePool::run), so every decision is
//! a pure function of the request stream and the policy — a scaled run is
//! byte-identical on every machine and under every `--jobs` setting, and
//! its decision log can be pinned as a golden snapshot.
//!
//! Two signals drive scaling, mirroring what a real fleet controller
//! watches:
//!
//! * **queue pressure** — admitted requests waiting per active worker.
//!   Growth past [`AutoscalePolicy::up_queue_per_worker`] adds workers;
//!   decay to [`AutoscalePolicy::down_queue_per_worker`] (a strictly
//!   lower threshold — the hysteresis band) releases them.
//! * **tail latency** — the p99 of completions inside the decision
//!   window. Blowing [`AutoscalePolicy::p99_target_ns`] scales up even
//!   when queues look shallow (slow batches, not deep backlogs).
//!
//! Every action starts a cooldown during which further actions are
//! suppressed, so one burst cannot thrash the worker count at the
//! decision frequency.

use crate::metrics::fmt_ms;

/// Scaling policy of one pool: bounds, decision cadence, hysteresis
/// thresholds, and cooldown. All times are virtual nanoseconds.
#[derive(Clone, Copy, Debug)]
pub struct AutoscalePolicy {
    /// Fewest workers the pool may shrink to (≥ 1).
    pub min_workers: usize,
    /// Most workers the pool may grow to; the pool allocates this many
    /// up front and gates dispatch to the active prefix.
    pub max_workers: usize,
    /// Virtual time between decision points.
    pub interval_ns: u64,
    /// Virtual time after an action during which further actions are
    /// suppressed.
    pub cooldown_ns: u64,
    /// Scale up when queued requests per active worker reach this.
    pub up_queue_per_worker: u32,
    /// Scale down only when queued requests per active worker are at or
    /// below this. Must sit strictly below the up threshold, or the pool
    /// oscillates every interval.
    pub down_queue_per_worker: u32,
    /// Scale up when the decision window's completion p99 exceeds this;
    /// scaling down additionally requires the window p99 under half of
    /// it. 0 disables the latency signal.
    pub p99_target_ns: u64,
    /// Workers added or released per action (≥ 1).
    pub step: usize,
}

impl AutoscalePolicy {
    /// A policy scaling between `min_workers` and `max_workers` with the
    /// default cadence: decisions every 25 ms of virtual time, 50 ms
    /// cooldown, up at 4 queued per worker, down at 1, p99 target at the
    /// standard-class deadline (250 ms), step an eighth of the range.
    #[must_use]
    pub fn new(min_workers: usize, max_workers: usize) -> Self {
        let min_workers = min_workers.max(1);
        let max_workers = max_workers.max(min_workers);
        AutoscalePolicy {
            min_workers,
            max_workers,
            interval_ns: 25_000_000,
            cooldown_ns: 50_000_000,
            up_queue_per_worker: 4,
            down_queue_per_worker: 1,
            p99_target_ns: 250_000_000,
            step: ((max_workers - min_workers) / 8).max(1),
        }
    }

    /// Clamps a worker count into the policy's `[min, max]` band.
    #[must_use]
    pub fn clamp(&self, workers: usize) -> usize {
        workers.clamp(self.min_workers.max(1), self.max_workers.max(1))
    }

    /// One pure scaling decision: given the active worker count, the
    /// total queued depth, and the decision window's completion p99,
    /// returns the new count and the triggering signal, or `None` to
    /// hold. Cooldown is the caller's business — the decision itself has
    /// no memory.
    #[must_use]
    pub fn decide(&self, active: usize, depth: usize, window_p99_ns: u64) -> ScaleDecision {
        let up = self.clamp(active + self.step);
        if up > active {
            if depth >= active * self.up_queue_per_worker as usize {
                return ScaleDecision::Scale(up, ScaleReason::QueueDepth);
            }
            if self.p99_target_ns > 0 && window_p99_ns > self.p99_target_ns {
                return ScaleDecision::Scale(up, ScaleReason::LatencySlo);
            }
        }
        let down = self.clamp(active.saturating_sub(self.step));
        if down < active
            && depth <= active * self.down_queue_per_worker as usize
            && (self.p99_target_ns == 0 || window_p99_ns < self.p99_target_ns / 2)
        {
            return ScaleDecision::Scale(down, ScaleReason::Idle);
        }
        ScaleDecision::Hold
    }
}

/// Outcome of one [`AutoscalePolicy::decide`] evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Keep the current active worker count.
    Hold,
    /// Move to the given worker count for the given reason.
    Scale(usize, ScaleReason),
}

/// Which signal triggered a scaling action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleReason {
    /// Queue pressure crossed the up threshold.
    QueueDepth,
    /// The decision window's p99 blew the latency target.
    LatencySlo,
    /// Pressure and tails both low: workers released.
    Idle,
}

impl ScaleReason {
    /// Stable label used in decision logs and tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScaleReason::QueueDepth => "queue-depth",
            ScaleReason::LatencySlo => "latency-slo",
            ScaleReason::Idle => "idle",
        }
    }
}

/// One autoscaling action in a run's decision log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScaleEvent {
    /// Virtual instant of the decision, nanoseconds.
    pub at_ns: u64,
    /// Node group the pool belongs to (0 for a standalone pool; the
    /// fleet stamps the real index when merging group logs).
    pub group: usize,
    /// Active workers before the action.
    pub from: usize,
    /// Active workers after the action.
    pub to: usize,
    /// Total queued depth observed at the decision.
    pub queue_depth: usize,
    /// Completion p99 of the decision window, nanoseconds.
    pub window_p99_ns: u64,
    /// The triggering signal.
    pub reason: ScaleReason,
}

/// Renders a decision log as stable plain text, one action per line —
/// the format the fleet study pins as a golden snapshot.
#[must_use]
pub fn render_scale_log(events: &[ScaleEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!(
            "t={}ms group {}: {} -> {} workers (queue depth {}, window p99 {}ms, {})\n",
            fmt_ms(e.at_ns),
            e.group,
            e.from,
            e.to,
            e.queue_depth,
            fmt_ms(e.window_p99_ns),
            e.reason.name()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AutoscalePolicy {
        AutoscalePolicy {
            step: 2,
            ..AutoscalePolicy::new(2, 8)
        }
    }

    #[test]
    fn bounds_are_sane() {
        let p = AutoscalePolicy::new(0, 0);
        assert_eq!(p.min_workers, 1);
        assert_eq!(p.max_workers, 1);
        assert_eq!(p.clamp(99), 1);
        let p = AutoscalePolicy::new(8, 2);
        assert!(p.max_workers >= p.min_workers);
    }

    #[test]
    fn queue_pressure_scales_up() {
        let p = policy();
        // 4 active × up threshold 4 = 16 queued trips the signal.
        assert_eq!(
            p.decide(4, 16, 0),
            ScaleDecision::Scale(6, ScaleReason::QueueDepth)
        );
        assert_eq!(p.decide(4, 15, 0), ScaleDecision::Hold);
    }

    #[test]
    fn latency_target_scales_up_without_queues() {
        let p = policy();
        assert_eq!(
            p.decide(4, 8, 400_000_000),
            ScaleDecision::Scale(6, ScaleReason::LatencySlo)
        );
        // Disabled latency signal never fires.
        let quiet = AutoscalePolicy {
            p99_target_ns: 0,
            ..p
        };
        assert_eq!(quiet.decide(4, 8, u64::MAX), ScaleDecision::Hold);
    }

    #[test]
    fn hysteresis_band_holds_between_thresholds() {
        let p = policy();
        // Depth between down (4×1) and up (4×4): hold.
        assert_eq!(p.decide(4, 8, 0), ScaleDecision::Hold);
        // At or under the down threshold with quiet tails: release.
        assert_eq!(
            p.decide(4, 4, 0),
            ScaleDecision::Scale(2, ScaleReason::Idle)
        );
        // Quiet queues but loud tails: hold (don't shed capacity while
        // the window p99 is within 2× of the target).
        assert_eq!(p.decide(4, 4, 200_000_000), ScaleDecision::Hold);
    }

    #[test]
    fn scaling_respects_the_band_edges() {
        let p = policy();
        assert_eq!(p.decide(8, 1_000, 0), ScaleDecision::Hold, "at max");
        assert_eq!(p.decide(2, 0, 0), ScaleDecision::Hold, "at min");
        // One step from the edge clamps to the edge.
        assert_eq!(
            p.decide(7, 1_000, 0),
            ScaleDecision::Scale(8, ScaleReason::QueueDepth)
        );
        assert_eq!(
            p.decide(3, 0, 0),
            ScaleDecision::Scale(2, ScaleReason::Idle)
        );
    }

    #[test]
    fn decision_log_renders_stably() {
        let log = render_scale_log(&[ScaleEvent {
            at_ns: 25_000_000,
            group: 3,
            from: 2,
            to: 4,
            queue_depth: 17,
            window_p99_ns: 312_500_000,
            reason: ScaleReason::QueueDepth,
        }]);
        assert_eq!(
            log,
            "t=25.000ms group 3: 2 -> 4 workers (queue depth 17, window p99 312.500ms, queue-depth)\n"
        );
    }
}
