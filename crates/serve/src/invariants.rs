//! Invariant checking over serve reports: conservation, ledger
//! exactness, and accounting consistency.
//!
//! A soak run is only as trustworthy as the bookkeeping it emits, so
//! every claim a [`ServeReport`] makes is cross-examined against the raw
//! per-request [`RequestOutcome`](crate::RequestOutcome) records here:
//!
//! * **Conservation** — every offered request is accounted for exactly
//!   once (`completed + rejected + failed_over + failed = total`), no
//!   request is stranded in a queue, and no outcome id repeats (a
//!   repeated id would mean a queue-generation leak: one request served
//!   twice).
//! * **Ledger exactness** — the per-tenant × deadline-class
//!   [`SloLedger`](crate::SloLedger) is recomputed from scratch from the
//!   raw outcomes and diffed bit-for-bit against the incrementally
//!   maintained one.
//! * **Accounting consistency** — batch histogram mass equals dispatched
//!   requests, latency sample counts equal finished requests, per-tenant
//!   rows sum to the pool totals, and no worker is busy longer than the
//!   run's makespan.
//!
//! [`check`] returns human-readable violations instead of panicking so
//! harnesses can attach the workload seed and keep a failing soak's full
//! report around for forensics.

use crate::fleet::FleetReport;
use crate::metrics::{OutcomeKind, ServeReport, SloLedger};

/// Checks every invariant of a serve report against `total_requests`
/// offered requests. Returns one message per violation; an empty vector
/// is a clean bill of health.
#[must_use]
pub fn check(total_requests: u64, report: &ServeReport) -> Vec<String> {
    let mut v: Vec<String> = Vec::new();
    let mut fail = |msg: String| v.push(msg);

    // Conservation of requests.
    let accounted = report.completed + report.rejected + report.failed_over + report.failed;
    if accounted != total_requests {
        fail(format!(
            "conservation: completed {} + rejected {} + failed_over {} + failed {} = {} \
             but {} requests were offered",
            report.completed,
            report.rejected,
            report.failed_over,
            report.failed,
            accounted,
            total_requests
        ));
    }
    if report.admitted + report.rejected != total_requests {
        fail(format!(
            "admission: admitted {} + rejected {} != offered {}",
            report.admitted, report.rejected, total_requests
        ));
    }
    if report.stranded != 0 {
        fail(format!(
            "queue leak: {} requests stranded in queues at end of run",
            report.stranded
        ));
    }
    if report.priced_out > report.rejected {
        fail(format!(
            "admission pricing: {} priced out but only {} rejected in total",
            report.priced_out, report.rejected
        ));
    }

    // Raw outcomes: one per request, unique ids.
    if report.outcomes.len() as u64 != total_requests {
        fail(format!(
            "outcomes: {} records for {} offered requests",
            report.outcomes.len(),
            total_requests
        ));
    }
    let mut ids: Vec<u64> = report.outcomes.iter().map(|o| o.id).collect();
    ids.sort_unstable();
    let before = ids.len();
    ids.dedup();
    if ids.len() != before {
        fail(format!(
            "outcomes: {} duplicate request ids (a request left the system twice)",
            before - ids.len()
        ));
    }

    // Outcome-kind counts must reproduce the aggregate counters.
    let count = |k: OutcomeKind| report.outcomes.iter().filter(|o| o.kind == k).count() as u64;
    for (label, aggregate, kind) in [
        ("completed", report.completed, OutcomeKind::Completed),
        ("rejected", report.rejected, OutcomeKind::Rejected),
        ("failed_over", report.failed_over, OutcomeKind::FailedOver),
        ("failed", report.failed, OutcomeKind::Failed),
    ] {
        let raw = count(kind);
        if raw != aggregate {
            fail(format!(
                "outcome counts: {label} aggregate {aggregate} but {raw} raw records"
            ));
        }
    }

    // SLO ledger must reconcile bit-for-bit with the raw outcomes.
    let recomputed = SloLedger::recompute(report.tenants.len(), &report.outcomes);
    if recomputed != report.slo {
        fail("slo ledger: incremental ledger differs from recompute over raw outcomes".into());
    }
    if report.slo.total_missed() != report.deadline_misses {
        fail(format!(
            "slo ledger: {} total misses but report counts {}",
            report.slo.total_missed(),
            report.deadline_misses
        ));
    }

    // Batch histogram mass = dispatched requests (each admitted request
    // is dispatched in exactly one batch).
    let hist_mass: u64 = report
        .batch_hist
        .iter()
        .enumerate()
        .map(|(i, &n)| (i as u64 + 1) * n)
        .sum();
    let dispatched = report.completed + report.failed_over + report.failed;
    if hist_mass != dispatched {
        fail(format!(
            "batch histogram: {hist_mass} requests in batches but {dispatched} dispatched"
        ));
    }

    // Latency samples cover exactly the finished requests.
    if report.latency.count != report.finished() {
        fail(format!(
            "latency: {} samples for {} finished requests",
            report.latency.count,
            report.finished()
        ));
    }

    // Per-tenant rows sum to the pool totals.
    let t_sum =
        |f: fn(&crate::metrics::TenantReport) -> u64| -> u64 { report.tenants.iter().map(f).sum() };
    for (label, aggregate, per_tenant) in [
        ("rejected", report.rejected, t_sum(|t| t.rejected)),
        (
            "deadline_misses",
            report.deadline_misses,
            t_sum(|t| t.deadline_misses),
        ),
        ("failed_over", report.failed_over, t_sum(|t| t.failed_over)),
        ("failed", report.failed, t_sum(|t| t.failed)),
        ("finished", report.finished(), t_sum(|t| t.latency.count)),
    ] {
        if aggregate != per_tenant {
            fail(format!(
                "tenant rows: {label} sums to {per_tenant} but pool total is {aggregate}"
            ));
        }
    }

    // No worker can be busy longer than the run lasted.
    for (i, &busy) in report.worker_busy_ns.iter().enumerate() {
        if busy > report.makespan_ns {
            fail(format!(
                "worker {i}: busy {busy} ns exceeds makespan {} ns",
                report.makespan_ns
            ));
        }
    }

    v
}

/// Checks a set of per-group serve reports both individually and
/// **fleet-wide**: every group must pass [`check`] against its own
/// offered count, no outcome id may appear in more than one group (a
/// cross-group duplicate means the sharding layer served one request
/// twice), and the groups' conservation sums must add up to the fleet's
/// offered total. `offered[g]` is the request count routed to group `g`;
/// the two slices must be the same length.
///
/// Per-group messages come back prefixed `group {g}: ` so a fleet
/// harness can report violations without losing the shard.
#[must_use]
pub fn check_groups(offered: &[u64], reports: &[&ServeReport]) -> Vec<String> {
    let mut v: Vec<String> = Vec::new();
    if offered.len() != reports.len() {
        v.push(format!(
            "fleet: {} offered counts for {} group reports",
            offered.len(),
            reports.len()
        ));
        return v;
    }

    for (g, (&n, report)) in offered.iter().zip(reports).enumerate() {
        for msg in check(n, report) {
            v.push(format!("group {g}: {msg}"));
        }
    }

    // Cross-group id uniqueness: per-group checks cannot see a request
    // that two shards both claim to have served.
    let mut ids: Vec<(u64, usize)> = reports
        .iter()
        .enumerate()
        .flat_map(|(g, r)| r.outcomes.iter().map(move |o| (o.id, g)))
        .collect();
    ids.sort_unstable();
    for w in ids.windows(2) {
        if w[0].0 == w[1].0 {
            v.push(format!(
                "fleet: request id {} left the system in group {} and again in group {} \
                 (cross-group double count)",
                w[0].0, w[0].1, w[1].1
            ));
        }
    }

    // Fleet-wide conservation: the shards' accounting must add up to the
    // fleet's offered total even if every shard balances internally.
    let total: u64 = offered.iter().sum();
    let accounted: u64 = reports
        .iter()
        .map(|r| r.completed + r.rejected + r.failed_over + r.failed)
        .sum();
    if accounted != total {
        v.push(format!(
            "fleet conservation: groups account for {accounted} requests but {total} were offered"
        ));
    }

    v
}

/// Checks a [`FleetReport`]: delegates to [`check_groups`] over the
/// per-group reports and offered counts the fleet recorded.
#[must_use]
pub fn check_fleet(report: &FleetReport) -> Vec<String> {
    let offered: Vec<u64> = report.groups.iter().map(|g| g.offered).collect();
    let reports: Vec<&ServeReport> = report.groups.iter().map(|g| &g.report).collect();
    check_groups(&offered, &reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosStats;
    use crate::metrics::{LatencyStats, RequestOutcome, ServeReport};
    use crate::request::DeadlineClass;
    use ulp_kernels::Benchmark;

    fn outcome(id: u64, kind: OutcomeKind) -> RequestOutcome {
        RequestOutcome {
            id,
            tenant: 0,
            class: DeadlineClass::Standard,
            benchmark: Benchmark::ALL[0],
            arrival_ns: 0,
            done_ns: 1_000_000,
            kind,
        }
    }

    fn clean_report() -> ServeReport {
        clean_report_from(0)
    }

    /// A 3-request clean report whose outcome ids start at `base` —
    /// disjoint bases build a clean fleet, equal bases a double-counting
    /// one.
    fn clean_report_from(base: u64) -> ServeReport {
        let outcomes = vec![
            outcome(base, OutcomeKind::Completed),
            outcome(base + 1, OutcomeKind::Completed),
            outcome(base + 2, OutcomeKind::Rejected),
        ];
        let slo = SloLedger::recompute(1, &outcomes);
        ServeReport {
            admitted: 2,
            completed: 2,
            rejected: 1,
            failed_over: 0,
            failed: 0,
            stranded: 0,
            deadline_misses: 0,
            makespan_ns: 2_000_000,
            latency: LatencyStats {
                count: 2,
                ..LatencyStats::default()
            },
            tenants: vec![crate::metrics::TenantReport {
                name: "t".into(),
                weight: 1,
                latency: LatencyStats {
                    count: 2,
                    ..LatencyStats::default()
                },
                rejected: 1,
                deadline_misses: 0,
                failed_over: 0,
                failed: 0,
            }],
            batch_hist: vec![0, 1], // one batch of two
            uploads: 1,
            worker_busy_ns: vec![1_000_000],
            max_queue_depth: 2,
            chaos: ChaosStats::default(),
            slo,
            outcomes,
            scale_events: Vec::new(),
            capacity_ns: 0,
            priced_out: 0,
        }
    }

    #[test]
    fn clean_report_passes() {
        assert!(check(3, &clean_report()).is_empty());
    }

    #[test]
    fn catches_conservation_breaks() {
        let r = clean_report();
        let v = check(4, &r);
        assert!(
            v.iter().any(|m| m.contains("conservation")),
            "violations: {v:?}"
        );
    }

    #[test]
    fn catches_stranded_requests() {
        let mut r = clean_report();
        r.stranded = 1;
        assert!(check(3, &r).iter().any(|m| m.contains("queue leak")));
    }

    #[test]
    fn catches_duplicate_ids() {
        let mut r = clean_report();
        r.outcomes[1].id = 0;
        assert!(check(3, &r).iter().any(|m| m.contains("duplicate")));
    }

    #[test]
    fn catches_cooked_ledgers() {
        let mut r = clean_report();
        r.slo.cells[0][DeadlineClass::Standard.rank() as usize].completed += 1;
        assert!(check(3, &r).iter().any(|m| m.contains("slo ledger")));
    }

    #[test]
    fn catches_histogram_drift() {
        let mut r = clean_report();
        r.batch_hist = vec![1]; // one single: mass 1 ≠ 2 dispatched
        assert!(check(3, &r).iter().any(|m| m.contains("batch histogram")));
    }

    #[test]
    fn catches_overbusy_workers() {
        let mut r = clean_report();
        r.worker_busy_ns[0] = 3_000_000;
        assert!(check(3, &r).iter().any(|m| m.contains("worker 0")));
    }

    #[test]
    fn catches_overpriced_admissions() {
        let mut r = clean_report();
        r.priced_out = r.rejected + 1;
        assert!(check(3, &r).iter().any(|m| m.contains("admission pricing")));
    }

    #[test]
    fn clean_disjoint_groups_pass_fleet_wide() {
        let (a, b) = (clean_report_from(0), clean_report_from(100));
        assert!(check_groups(&[3, 3], &[&a, &b]).is_empty());
    }

    #[test]
    fn catches_cross_group_double_count() {
        // Both shards are internally clean — and claim the same ids:
        // only the fleet-wide pass can see the double count.
        let (a, b) = (clean_report_from(0), clean_report_from(0));
        assert!(check(3, &a).is_empty());
        assert!(check(3, &b).is_empty());
        let v = check_groups(&[3, 3], &[&a, &b]);
        assert!(
            v.iter().any(|m| m.contains("cross-group double count")),
            "violations: {v:?}"
        );
    }

    #[test]
    fn catches_fleet_conservation_breaks() {
        let (a, b) = (clean_report_from(0), clean_report_from(100));
        let v = check_groups(&[3, 4], &[&a, &b]);
        assert!(v.iter().any(|m| m.starts_with("group 1: conservation")));
        assert!(v.iter().any(|m| m.contains("fleet conservation")));
        assert!(check_groups(&[3], &[&a, &b])
            .iter()
            .any(|m| m.contains("offered counts")));
    }
}
