/root/repo/target/debug/examples/feature_pipeline-4fca749455c9a4ed.d: examples/feature_pipeline.rs

/root/repo/target/debug/examples/feature_pipeline-4fca749455c9a4ed: examples/feature_pipeline.rs

examples/feature_pipeline.rs:
