/root/repo/target/debug/examples/smart_camera-205e1ac2fb1dd119.d: examples/smart_camera.rs Cargo.toml

/root/repo/target/debug/examples/libsmart_camera-205e1ac2fb1dd119.rmeta: examples/smart_camera.rs Cargo.toml

examples/smart_camera.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
