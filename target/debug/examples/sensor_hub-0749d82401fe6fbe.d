/root/repo/target/debug/examples/sensor_hub-0749d82401fe6fbe.d: examples/sensor_hub.rs

/root/repo/target/debug/examples/sensor_hub-0749d82401fe6fbe: examples/sensor_hub.rs

examples/sensor_hub.rs:
