/root/repo/target/debug/examples/fibonacci-5630c2c584e322bb.d: crates/isa/examples/fibonacci.rs Cargo.toml

/root/repo/target/debug/examples/libfibonacci-5630c2c584e322bb.rmeta: crates/isa/examples/fibonacci.rs Cargo.toml

crates/isa/examples/fibonacci.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
