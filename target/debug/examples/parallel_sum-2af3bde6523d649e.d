/root/repo/target/debug/examples/parallel_sum-2af3bde6523d649e.d: crates/cluster/examples/parallel_sum.rs

/root/repo/target/debug/examples/parallel_sum-2af3bde6523d649e: crates/cluster/examples/parallel_sum.rs

crates/cluster/examples/parallel_sum.rs:
