/root/repo/target/debug/examples/fibonacci-509d2b07836bd6dd.d: crates/isa/examples/fibonacci.rs

/root/repo/target/debug/examples/fibonacci-509d2b07836bd6dd: crates/isa/examples/fibonacci.rs

crates/isa/examples/fibonacci.rs:
