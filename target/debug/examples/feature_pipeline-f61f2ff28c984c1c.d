/root/repo/target/debug/examples/feature_pipeline-f61f2ff28c984c1c.d: examples/feature_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libfeature_pipeline-f61f2ff28c984c1c.rmeta: examples/feature_pipeline.rs Cargo.toml

examples/feature_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
