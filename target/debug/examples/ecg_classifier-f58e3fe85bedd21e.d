/root/repo/target/debug/examples/ecg_classifier-f58e3fe85bedd21e.d: examples/ecg_classifier.rs Cargo.toml

/root/repo/target/debug/examples/libecg_classifier-f58e3fe85bedd21e.rmeta: examples/ecg_classifier.rs Cargo.toml

examples/ecg_classifier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
