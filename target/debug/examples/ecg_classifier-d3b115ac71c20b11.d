/root/repo/target/debug/examples/ecg_classifier-d3b115ac71c20b11.d: examples/ecg_classifier.rs

/root/repo/target/debug/examples/ecg_classifier-d3b115ac71c20b11: examples/ecg_classifier.rs

examples/ecg_classifier.rs:
