/root/repo/target/debug/examples/sensor_hub-6044aebd1df7d3c2.d: examples/sensor_hub.rs Cargo.toml

/root/repo/target/debug/examples/libsensor_hub-6044aebd1df7d3c2.rmeta: examples/sensor_hub.rs Cargo.toml

examples/sensor_hub.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
