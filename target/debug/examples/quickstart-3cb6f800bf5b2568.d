/root/repo/target/debug/examples/quickstart-3cb6f800bf5b2568.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3cb6f800bf5b2568: examples/quickstart.rs

examples/quickstart.rs:
