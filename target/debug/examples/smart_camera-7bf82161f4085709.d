/root/repo/target/debug/examples/smart_camera-7bf82161f4085709.d: examples/smart_camera.rs

/root/repo/target/debug/examples/smart_camera-7bf82161f4085709: examples/smart_camera.rs

examples/smart_camera.rs:
