/root/repo/target/debug/examples/parallel_sum-5e6d56bafe2154c6.d: crates/cluster/examples/parallel_sum.rs Cargo.toml

/root/repo/target/debug/examples/libparallel_sum-5e6d56bafe2154c6.rmeta: crates/cluster/examples/parallel_sum.rs Cargo.toml

crates/cluster/examples/parallel_sum.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
