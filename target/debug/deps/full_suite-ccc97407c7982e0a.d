/root/repo/target/debug/deps/full_suite-ccc97407c7982e0a.d: crates/kernels/tests/full_suite.rs

/root/repo/target/debug/deps/full_suite-ccc97407c7982e0a: crates/kernels/tests/full_suite.rs

crates/kernels/tests/full_suite.rs:
