/root/repo/target/debug/deps/ulp_offload-49b1584457faad2c.d: crates/core/src/lib.rs crates/core/src/envelope.rs crates/core/src/region.rs crates/core/src/system.rs

/root/repo/target/debug/deps/ulp_offload-49b1584457faad2c: crates/core/src/lib.rs crates/core/src/envelope.rs crates/core/src/region.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/envelope.rs:
crates/core/src/region.rs:
crates/core/src/system.rs:
