/root/repo/target/debug/deps/fig5b-157476d856d41e5f.d: crates/bench/src/bin/fig5b.rs

/root/repo/target/debug/deps/fig5b-157476d856d41e5f: crates/bench/src/bin/fig5b.rs

crates/bench/src/bin/fig5b.rs:
