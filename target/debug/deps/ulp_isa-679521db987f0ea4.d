/root/repo/target/debug/deps/ulp_isa-679521db987f0ea4.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/exec.rs crates/isa/src/features.rs crates/isa/src/insn.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/text.rs

/root/repo/target/debug/deps/ulp_isa-679521db987f0ea4: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/exec.rs crates/isa/src/features.rs crates/isa/src/insn.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/text.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/encode.rs:
crates/isa/src/exec.rs:
crates/isa/src/features.rs:
crates/isa/src/insn.rs:
crates/isa/src/mem.rs:
crates/isa/src/reg.rs:
crates/isa/src/text.rs:
