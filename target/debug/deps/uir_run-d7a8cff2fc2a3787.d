/root/repo/target/debug/deps/uir_run-d7a8cff2fc2a3787.d: crates/tools/src/bin/uir-run.rs

/root/repo/target/debug/deps/uir_run-d7a8cff2fc2a3787: crates/tools/src/bin/uir-run.rs

crates/tools/src/bin/uir-run.rs:
