/root/repo/target/debug/deps/ulp_bench-3a189720e1465002.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/extensions.rs crates/bench/src/faults.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5a.rs crates/bench/src/fig5b.rs crates/bench/src/measure.rs crates/bench/src/scaling.rs crates/bench/src/table1.rs Cargo.toml

/root/repo/target/debug/deps/libulp_bench-3a189720e1465002.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/extensions.rs crates/bench/src/faults.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5a.rs crates/bench/src/fig5b.rs crates/bench/src/measure.rs crates/bench/src/scaling.rs crates/bench/src/table1.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/extensions.rs:
crates/bench/src/faults.rs:
crates/bench/src/fig3.rs:
crates/bench/src/fig4.rs:
crates/bench/src/fig5a.rs:
crates/bench/src/fig5b.rs:
crates/bench/src/measure.rs:
crates/bench/src/scaling.rs:
crates/bench/src/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
