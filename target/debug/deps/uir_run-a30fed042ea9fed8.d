/root/repo/target/debug/deps/uir_run-a30fed042ea9fed8.d: crates/tools/src/bin/uir-run.rs Cargo.toml

/root/repo/target/debug/deps/libuir_run-a30fed042ea9fed8.rmeta: crates/tools/src/bin/uir-run.rs Cargo.toml

crates/tools/src/bin/uir-run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
