/root/repo/target/debug/deps/uir_dis-941ef4f057cdac08.d: crates/tools/src/bin/uir-dis.rs Cargo.toml

/root/repo/target/debug/deps/libuir_dis-941ef4f057cdac08.rmeta: crates/tools/src/bin/uir-dis.rs Cargo.toml

crates/tools/src/bin/uir-dis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
