/root/repo/target/debug/deps/ulp_tools-a88aa8aaa8458998.d: crates/tools/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libulp_tools-a88aa8aaa8458998.rmeta: crates/tools/src/lib.rs Cargo.toml

crates/tools/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
