/root/repo/target/debug/deps/uir_asm-a81c552cc443208e.d: crates/tools/src/bin/uir-asm.rs

/root/repo/target/debug/deps/uir_asm-a81c552cc443208e: crates/tools/src/bin/uir-asm.rs

crates/tools/src/bin/uir-asm.rs:
