/root/repo/target/debug/deps/ulp_kernels-4e5c27dcce703f02.d: crates/kernels/src/lib.rs crates/kernels/src/cnn.rs crates/kernels/src/codegen/mod.rs crates/kernels/src/codegen/emit.rs crates/kernels/src/codegen/rtlib.rs crates/kernels/src/fixed.rs crates/kernels/src/hog.rs crates/kernels/src/matmul.rs crates/kernels/src/runner.rs crates/kernels/src/strassen.rs crates/kernels/src/streaming.rs crates/kernels/src/suite.rs crates/kernels/src/svm.rs Cargo.toml

/root/repo/target/debug/deps/libulp_kernels-4e5c27dcce703f02.rmeta: crates/kernels/src/lib.rs crates/kernels/src/cnn.rs crates/kernels/src/codegen/mod.rs crates/kernels/src/codegen/emit.rs crates/kernels/src/codegen/rtlib.rs crates/kernels/src/fixed.rs crates/kernels/src/hog.rs crates/kernels/src/matmul.rs crates/kernels/src/runner.rs crates/kernels/src/strassen.rs crates/kernels/src/streaming.rs crates/kernels/src/suite.rs crates/kernels/src/svm.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/cnn.rs:
crates/kernels/src/codegen/mod.rs:
crates/kernels/src/codegen/emit.rs:
crates/kernels/src/codegen/rtlib.rs:
crates/kernels/src/fixed.rs:
crates/kernels/src/hog.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/runner.rs:
crates/kernels/src/strassen.rs:
crates/kernels/src/streaming.rs:
crates/kernels/src/suite.rs:
crates/kernels/src/svm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
