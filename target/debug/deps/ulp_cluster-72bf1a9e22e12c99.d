/root/repo/target/debug/deps/ulp_cluster-72bf1a9e22e12c99.d: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/config.rs crates/cluster/src/dma.rs crates/cluster/src/event.rs crates/cluster/src/icache.rs crates/cluster/src/l2.rs crates/cluster/src/stats.rs crates/cluster/src/tcdm.rs Cargo.toml

/root/repo/target/debug/deps/libulp_cluster-72bf1a9e22e12c99.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/config.rs crates/cluster/src/dma.rs crates/cluster/src/event.rs crates/cluster/src/icache.rs crates/cluster/src/l2.rs crates/cluster/src/stats.rs crates/cluster/src/tcdm.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/cluster.rs:
crates/cluster/src/config.rs:
crates/cluster/src/dma.rs:
crates/cluster/src/event.rs:
crates/cluster/src/icache.rs:
crates/cluster/src/l2.rs:
crates/cluster/src/stats.rs:
crates/cluster/src/tcdm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
