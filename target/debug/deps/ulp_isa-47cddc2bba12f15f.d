/root/repo/target/debug/deps/ulp_isa-47cddc2bba12f15f.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/exec.rs crates/isa/src/features.rs crates/isa/src/insn.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/text.rs

/root/repo/target/debug/deps/libulp_isa-47cddc2bba12f15f.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/exec.rs crates/isa/src/features.rs crates/isa/src/insn.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/text.rs

/root/repo/target/debug/deps/libulp_isa-47cddc2bba12f15f.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/exec.rs crates/isa/src/features.rs crates/isa/src/insn.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/text.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/encode.rs:
crates/isa/src/exec.rs:
crates/isa/src/features.rs:
crates/isa/src/insn.rs:
crates/isa/src/mem.rs:
crates/isa/src/reg.rs:
crates/isa/src/text.rs:
