/root/repo/target/debug/deps/differential-9828eb3554ed2d6f.d: crates/isa/tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-9828eb3554ed2d6f.rmeta: crates/isa/tests/differential.rs Cargo.toml

crates/isa/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
