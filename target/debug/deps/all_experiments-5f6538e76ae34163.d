/root/repo/target/debug/deps/all_experiments-5f6538e76ae34163.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-5f6538e76ae34163: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
