/root/repo/target/debug/deps/het_sim-deca5aff85901aea.d: crates/tools/src/bin/het-sim.rs Cargo.toml

/root/repo/target/debug/deps/libhet_sim-deca5aff85901aea.rmeta: crates/tools/src/bin/het-sim.rs Cargo.toml

crates/tools/src/bin/het-sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
