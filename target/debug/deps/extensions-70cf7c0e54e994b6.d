/root/repo/target/debug/deps/extensions-70cf7c0e54e994b6.d: crates/bench/src/bin/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-70cf7c0e54e994b6.rmeta: crates/bench/src/bin/extensions.rs Cargo.toml

crates/bench/src/bin/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
