/root/repo/target/debug/deps/hardening-edaacdbbc2da499a.d: crates/link/tests/hardening.rs Cargo.toml

/root/repo/target/debug/deps/libhardening-edaacdbbc2da499a.rmeta: crates/link/tests/hardening.rs Cargo.toml

crates/link/tests/hardening.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
