/root/repo/target/debug/deps/ulp_kernels-bf358f3aec8603f4.d: crates/kernels/src/lib.rs crates/kernels/src/cnn.rs crates/kernels/src/codegen/mod.rs crates/kernels/src/codegen/emit.rs crates/kernels/src/codegen/rtlib.rs crates/kernels/src/fixed.rs crates/kernels/src/hog.rs crates/kernels/src/matmul.rs crates/kernels/src/runner.rs crates/kernels/src/strassen.rs crates/kernels/src/streaming.rs crates/kernels/src/suite.rs crates/kernels/src/svm.rs

/root/repo/target/debug/deps/libulp_kernels-bf358f3aec8603f4.rlib: crates/kernels/src/lib.rs crates/kernels/src/cnn.rs crates/kernels/src/codegen/mod.rs crates/kernels/src/codegen/emit.rs crates/kernels/src/codegen/rtlib.rs crates/kernels/src/fixed.rs crates/kernels/src/hog.rs crates/kernels/src/matmul.rs crates/kernels/src/runner.rs crates/kernels/src/strassen.rs crates/kernels/src/streaming.rs crates/kernels/src/suite.rs crates/kernels/src/svm.rs

/root/repo/target/debug/deps/libulp_kernels-bf358f3aec8603f4.rmeta: crates/kernels/src/lib.rs crates/kernels/src/cnn.rs crates/kernels/src/codegen/mod.rs crates/kernels/src/codegen/emit.rs crates/kernels/src/codegen/rtlib.rs crates/kernels/src/fixed.rs crates/kernels/src/hog.rs crates/kernels/src/matmul.rs crates/kernels/src/runner.rs crates/kernels/src/strassen.rs crates/kernels/src/streaming.rs crates/kernels/src/suite.rs crates/kernels/src/svm.rs

crates/kernels/src/lib.rs:
crates/kernels/src/cnn.rs:
crates/kernels/src/codegen/mod.rs:
crates/kernels/src/codegen/emit.rs:
crates/kernels/src/codegen/rtlib.rs:
crates/kernels/src/fixed.rs:
crates/kernels/src/hog.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/runner.rs:
crates/kernels/src/strassen.rs:
crates/kernels/src/streaming.rs:
crates/kernels/src/suite.rs:
crates/kernels/src/svm.rs:
