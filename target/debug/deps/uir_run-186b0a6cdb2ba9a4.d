/root/repo/target/debug/deps/uir_run-186b0a6cdb2ba9a4.d: crates/tools/src/bin/uir-run.rs

/root/repo/target/debug/deps/uir_run-186b0a6cdb2ba9a4: crates/tools/src/bin/uir-run.rs

crates/tools/src/bin/uir-run.rs:
