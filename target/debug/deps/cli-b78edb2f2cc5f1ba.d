/root/repo/target/debug/deps/cli-b78edb2f2cc5f1ba.d: crates/tools/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-b78edb2f2cc5f1ba.rmeta: crates/tools/tests/cli.rs Cargo.toml

crates/tools/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_het-sim=placeholder:het-sim
# env-dep:CARGO_BIN_EXE_uir-asm=placeholder:uir-asm
# env-dep:CARGO_BIN_EXE_uir-dis=placeholder:uir-dis
# env-dep:CARGO_BIN_EXE_uir-run=placeholder:uir-run
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
