/root/repo/target/debug/deps/ulp_power-4727e3a24d37525e.d: crates/power/src/lib.rs crates/power/src/interp.rs crates/power/src/model.rs

/root/repo/target/debug/deps/libulp_power-4727e3a24d37525e.rlib: crates/power/src/lib.rs crates/power/src/interp.rs crates/power/src/model.rs

/root/repo/target/debug/deps/libulp_power-4727e3a24d37525e.rmeta: crates/power/src/lib.rs crates/power/src/interp.rs crates/power/src/model.rs

crates/power/src/lib.rs:
crates/power/src/interp.rs:
crates/power/src/model.rs:
