/root/repo/target/debug/deps/ulp_mcu-786dabe114201850.d: crates/mcu/src/lib.rs crates/mcu/src/device.rs crates/mcu/src/host.rs crates/mcu/src/wfe.rs

/root/repo/target/debug/deps/ulp_mcu-786dabe114201850: crates/mcu/src/lib.rs crates/mcu/src/device.rs crates/mcu/src/host.rs crates/mcu/src/wfe.rs

crates/mcu/src/lib.rs:
crates/mcu/src/device.rs:
crates/mcu/src/host.rs:
crates/mcu/src/wfe.rs:
