/root/repo/target/debug/deps/scaling-3d4dc313ecba1563.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-3d4dc313ecba1563: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
