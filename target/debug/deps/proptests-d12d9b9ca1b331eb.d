/root/repo/target/debug/deps/proptests-d12d9b9ca1b331eb.d: crates/cluster/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d12d9b9ca1b331eb: crates/cluster/tests/proptests.rs

crates/cluster/tests/proptests.rs:
