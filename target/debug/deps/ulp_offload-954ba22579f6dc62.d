/root/repo/target/debug/deps/ulp_offload-954ba22579f6dc62.d: crates/core/src/lib.rs crates/core/src/envelope.rs crates/core/src/region.rs crates/core/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libulp_offload-954ba22579f6dc62.rmeta: crates/core/src/lib.rs crates/core/src/envelope.rs crates/core/src/region.rs crates/core/src/system.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/envelope.rs:
crates/core/src/region.rs:
crates/core/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
