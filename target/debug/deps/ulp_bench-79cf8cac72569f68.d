/root/repo/target/debug/deps/ulp_bench-79cf8cac72569f68.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/extensions.rs crates/bench/src/faults.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5a.rs crates/bench/src/fig5b.rs crates/bench/src/measure.rs crates/bench/src/scaling.rs crates/bench/src/table1.rs

/root/repo/target/debug/deps/libulp_bench-79cf8cac72569f68.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/extensions.rs crates/bench/src/faults.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5a.rs crates/bench/src/fig5b.rs crates/bench/src/measure.rs crates/bench/src/scaling.rs crates/bench/src/table1.rs

/root/repo/target/debug/deps/libulp_bench-79cf8cac72569f68.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/extensions.rs crates/bench/src/faults.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5a.rs crates/bench/src/fig5b.rs crates/bench/src/measure.rs crates/bench/src/scaling.rs crates/bench/src/table1.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/extensions.rs:
crates/bench/src/faults.rs:
crates/bench/src/fig3.rs:
crates/bench/src/fig4.rs:
crates/bench/src/fig5a.rs:
crates/bench/src/fig5b.rs:
crates/bench/src/measure.rs:
crates/bench/src/scaling.rs:
crates/bench/src/table1.rs:
