/root/repo/target/debug/deps/uir_dis-5dabcef3bff87956.d: crates/tools/src/bin/uir-dis.rs

/root/repo/target/debug/deps/uir_dis-5dabcef3bff87956: crates/tools/src/bin/uir-dis.rs

crates/tools/src/bin/uir-dis.rs:
