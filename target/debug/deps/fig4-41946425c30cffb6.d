/root/repo/target/debug/deps/fig4-41946425c30cffb6.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-41946425c30cffb6: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
