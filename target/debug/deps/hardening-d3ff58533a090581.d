/root/repo/target/debug/deps/hardening-d3ff58533a090581.d: crates/link/tests/hardening.rs

/root/repo/target/debug/deps/hardening-d3ff58533a090581: crates/link/tests/hardening.rs

crates/link/tests/hardening.rs:
