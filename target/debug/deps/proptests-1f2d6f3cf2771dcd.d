/root/repo/target/debug/deps/proptests-1f2d6f3cf2771dcd.d: crates/isa/tests/proptests.rs

/root/repo/target/debug/deps/proptests-1f2d6f3cf2771dcd: crates/isa/tests/proptests.rs

crates/isa/tests/proptests.rs:
