/root/repo/target/debug/deps/ulp_rng-b1410d1ad38f3a79.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libulp_rng-b1410d1ad38f3a79.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libulp_rng-b1410d1ad38f3a79.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
