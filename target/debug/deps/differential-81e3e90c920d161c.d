/root/repo/target/debug/deps/differential-81e3e90c920d161c.d: crates/isa/tests/differential.rs

/root/repo/target/debug/deps/differential-81e3e90c920d161c: crates/isa/tests/differential.rs

crates/isa/tests/differential.rs:
