/root/repo/target/debug/deps/proptests-1cd81b87ce3b058a.d: crates/isa/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-1cd81b87ce3b058a.rmeta: crates/isa/tests/proptests.rs Cargo.toml

crates/isa/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
