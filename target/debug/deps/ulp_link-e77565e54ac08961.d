/root/repo/target/debug/deps/ulp_link-e77565e54ac08961.d: crates/link/src/lib.rs crates/link/src/crc.rs crates/link/src/fault.rs crates/link/src/frame.rs crates/link/src/spi.rs Cargo.toml

/root/repo/target/debug/deps/libulp_link-e77565e54ac08961.rmeta: crates/link/src/lib.rs crates/link/src/crc.rs crates/link/src/fault.rs crates/link/src/frame.rs crates/link/src/spi.rs Cargo.toml

crates/link/src/lib.rs:
crates/link/src/crc.rs:
crates/link/src/fault.rs:
crates/link/src/frame.rs:
crates/link/src/spi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
