/root/repo/target/debug/deps/cli-064986549ff543e6.d: crates/tools/tests/cli.rs

/root/repo/target/debug/deps/cli-064986549ff543e6: crates/tools/tests/cli.rs

crates/tools/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_het-sim=/root/repo/target/debug/het-sim
# env-dep:CARGO_BIN_EXE_uir-asm=/root/repo/target/debug/uir-asm
# env-dep:CARGO_BIN_EXE_uir-dis=/root/repo/target/debug/uir-dis
# env-dep:CARGO_BIN_EXE_uir-run=/root/repo/target/debug/uir-run
