/root/repo/target/debug/deps/scaling-c07ca6f2ddc2ec6d.d: crates/bench/src/bin/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-c07ca6f2ddc2ec6d.rmeta: crates/bench/src/bin/scaling.rs Cargo.toml

crates/bench/src/bin/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
