/root/repo/target/debug/deps/ulp_mcu-925a34da1b2a287e.d: crates/mcu/src/lib.rs crates/mcu/src/device.rs crates/mcu/src/host.rs crates/mcu/src/wfe.rs

/root/repo/target/debug/deps/libulp_mcu-925a34da1b2a287e.rlib: crates/mcu/src/lib.rs crates/mcu/src/device.rs crates/mcu/src/host.rs crates/mcu/src/wfe.rs

/root/repo/target/debug/deps/libulp_mcu-925a34da1b2a287e.rmeta: crates/mcu/src/lib.rs crates/mcu/src/device.rs crates/mcu/src/host.rs crates/mcu/src/wfe.rs

crates/mcu/src/lib.rs:
crates/mcu/src/device.rs:
crates/mcu/src/host.rs:
crates/mcu/src/wfe.rs:
