/root/repo/target/debug/deps/ulp_link-0c2a62f1efd95b9f.d: crates/link/src/lib.rs crates/link/src/crc.rs crates/link/src/fault.rs crates/link/src/frame.rs crates/link/src/spi.rs

/root/repo/target/debug/deps/ulp_link-0c2a62f1efd95b9f: crates/link/src/lib.rs crates/link/src/crc.rs crates/link/src/fault.rs crates/link/src/frame.rs crates/link/src/spi.rs

crates/link/src/lib.rs:
crates/link/src/crc.rs:
crates/link/src/fault.rs:
crates/link/src/frame.rs:
crates/link/src/spi.rs:
