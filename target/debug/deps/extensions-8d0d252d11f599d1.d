/root/repo/target/debug/deps/extensions-8d0d252d11f599d1.d: crates/bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-8d0d252d11f599d1: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
