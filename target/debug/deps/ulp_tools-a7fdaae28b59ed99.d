/root/repo/target/debug/deps/ulp_tools-a7fdaae28b59ed99.d: crates/tools/src/lib.rs

/root/repo/target/debug/deps/ulp_tools-a7fdaae28b59ed99: crates/tools/src/lib.rs

crates/tools/src/lib.rs:
