/root/repo/target/debug/deps/ulp_isa-9553f66046aaab88.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/exec.rs crates/isa/src/features.rs crates/isa/src/insn.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/text.rs Cargo.toml

/root/repo/target/debug/deps/libulp_isa-9553f66046aaab88.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/exec.rs crates/isa/src/features.rs crates/isa/src/insn.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/text.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/encode.rs:
crates/isa/src/exec.rs:
crates/isa/src/features.rs:
crates/isa/src/insn.rs:
crates/isa/src/mem.rs:
crates/isa/src/reg.rs:
crates/isa/src/text.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
