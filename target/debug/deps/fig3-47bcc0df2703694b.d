/root/repo/target/debug/deps/fig3-47bcc0df2703694b.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-47bcc0df2703694b: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
