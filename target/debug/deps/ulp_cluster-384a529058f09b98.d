/root/repo/target/debug/deps/ulp_cluster-384a529058f09b98.d: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/config.rs crates/cluster/src/dma.rs crates/cluster/src/event.rs crates/cluster/src/icache.rs crates/cluster/src/l2.rs crates/cluster/src/stats.rs crates/cluster/src/tcdm.rs

/root/repo/target/debug/deps/ulp_cluster-384a529058f09b98: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/config.rs crates/cluster/src/dma.rs crates/cluster/src/event.rs crates/cluster/src/icache.rs crates/cluster/src/l2.rs crates/cluster/src/stats.rs crates/cluster/src/tcdm.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cluster.rs:
crates/cluster/src/config.rs:
crates/cluster/src/dma.rs:
crates/cluster/src/event.rs:
crates/cluster/src/icache.rs:
crates/cluster/src/l2.rs:
crates/cluster/src/stats.rs:
crates/cluster/src/tcdm.rs:
