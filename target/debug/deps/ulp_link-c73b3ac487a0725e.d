/root/repo/target/debug/deps/ulp_link-c73b3ac487a0725e.d: crates/link/src/lib.rs crates/link/src/crc.rs crates/link/src/fault.rs crates/link/src/frame.rs crates/link/src/spi.rs

/root/repo/target/debug/deps/libulp_link-c73b3ac487a0725e.rlib: crates/link/src/lib.rs crates/link/src/crc.rs crates/link/src/fault.rs crates/link/src/frame.rs crates/link/src/spi.rs

/root/repo/target/debug/deps/libulp_link-c73b3ac487a0725e.rmeta: crates/link/src/lib.rs crates/link/src/crc.rs crates/link/src/fault.rs crates/link/src/frame.rs crates/link/src/spi.rs

crates/link/src/lib.rs:
crates/link/src/crc.rs:
crates/link/src/fault.rs:
crates/link/src/frame.rs:
crates/link/src/spi.rs:
