/root/repo/target/debug/deps/table1-e3e4b80f38555bb6.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-e3e4b80f38555bb6: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
