/root/repo/target/debug/deps/het_accel-18b99106d2043792.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhet_accel-18b99106d2043792.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
