/root/repo/target/debug/deps/ulp_cluster-c9788e32c560a5ab.d: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/config.rs crates/cluster/src/dma.rs crates/cluster/src/event.rs crates/cluster/src/icache.rs crates/cluster/src/l2.rs crates/cluster/src/stats.rs crates/cluster/src/tcdm.rs

/root/repo/target/debug/deps/libulp_cluster-c9788e32c560a5ab.rlib: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/config.rs crates/cluster/src/dma.rs crates/cluster/src/event.rs crates/cluster/src/icache.rs crates/cluster/src/l2.rs crates/cluster/src/stats.rs crates/cluster/src/tcdm.rs

/root/repo/target/debug/deps/libulp_cluster-c9788e32c560a5ab.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/config.rs crates/cluster/src/dma.rs crates/cluster/src/event.rs crates/cluster/src/icache.rs crates/cluster/src/l2.rs crates/cluster/src/stats.rs crates/cluster/src/tcdm.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cluster.rs:
crates/cluster/src/config.rs:
crates/cluster/src/dma.rs:
crates/cluster/src/event.rs:
crates/cluster/src/icache.rs:
crates/cluster/src/l2.rs:
crates/cluster/src/stats.rs:
crates/cluster/src/tcdm.rs:
