/root/repo/target/debug/deps/ulp_power-f84b388fd94f1f3c.d: crates/power/src/lib.rs crates/power/src/interp.rs crates/power/src/model.rs

/root/repo/target/debug/deps/ulp_power-f84b388fd94f1f3c: crates/power/src/lib.rs crates/power/src/interp.rs crates/power/src/model.rs

crates/power/src/lib.rs:
crates/power/src/interp.rs:
crates/power/src/model.rs:
