/root/repo/target/debug/deps/system_properties-cdd07587065a6c46.d: tests/system_properties.rs

/root/repo/target/debug/deps/system_properties-cdd07587065a6c46: tests/system_properties.rs

tests/system_properties.rs:
