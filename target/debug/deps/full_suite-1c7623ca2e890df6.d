/root/repo/target/debug/deps/full_suite-1c7623ca2e890df6.d: crates/kernels/tests/full_suite.rs Cargo.toml

/root/repo/target/debug/deps/libfull_suite-1c7623ca2e890df6.rmeta: crates/kernels/tests/full_suite.rs Cargo.toml

crates/kernels/tests/full_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
