/root/repo/target/debug/deps/uir_asm-dd396561dfe12198.d: crates/tools/src/bin/uir-asm.rs Cargo.toml

/root/repo/target/debug/deps/libuir_asm-dd396561dfe12198.rmeta: crates/tools/src/bin/uir-asm.rs Cargo.toml

crates/tools/src/bin/uir-asm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
