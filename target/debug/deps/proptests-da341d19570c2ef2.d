/root/repo/target/debug/deps/proptests-da341d19570c2ef2.d: crates/cluster/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-da341d19570c2ef2.rmeta: crates/cluster/tests/proptests.rs Cargo.toml

crates/cluster/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
