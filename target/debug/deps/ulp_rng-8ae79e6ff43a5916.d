/root/repo/target/debug/deps/ulp_rng-8ae79e6ff43a5916.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/ulp_rng-8ae79e6ff43a5916: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
