/root/repo/target/debug/deps/het_accel-95eef010bb24011b.d: src/lib.rs

/root/repo/target/debug/deps/het_accel-95eef010bb24011b: src/lib.rs

src/lib.rs:
