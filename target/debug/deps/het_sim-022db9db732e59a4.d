/root/repo/target/debug/deps/het_sim-022db9db732e59a4.d: crates/tools/src/bin/het-sim.rs

/root/repo/target/debug/deps/het_sim-022db9db732e59a4: crates/tools/src/bin/het-sim.rs

crates/tools/src/bin/het-sim.rs:
