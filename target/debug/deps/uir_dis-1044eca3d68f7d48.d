/root/repo/target/debug/deps/uir_dis-1044eca3d68f7d48.d: crates/tools/src/bin/uir-dis.rs

/root/repo/target/debug/deps/uir_dis-1044eca3d68f7d48: crates/tools/src/bin/uir-dis.rs

crates/tools/src/bin/uir-dis.rs:
