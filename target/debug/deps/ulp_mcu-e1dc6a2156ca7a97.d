/root/repo/target/debug/deps/ulp_mcu-e1dc6a2156ca7a97.d: crates/mcu/src/lib.rs crates/mcu/src/device.rs crates/mcu/src/host.rs crates/mcu/src/wfe.rs Cargo.toml

/root/repo/target/debug/deps/libulp_mcu-e1dc6a2156ca7a97.rmeta: crates/mcu/src/lib.rs crates/mcu/src/device.rs crates/mcu/src/host.rs crates/mcu/src/wfe.rs Cargo.toml

crates/mcu/src/lib.rs:
crates/mcu/src/device.rs:
crates/mcu/src/host.rs:
crates/mcu/src/wfe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
