/root/repo/target/debug/deps/ulp_rng-a3775f901dec5e49.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libulp_rng-a3775f901dec5e49.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
