/root/repo/target/debug/deps/ulp_bench-159061d2c7c5432b.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/extensions.rs crates/bench/src/faults.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5a.rs crates/bench/src/fig5b.rs crates/bench/src/measure.rs crates/bench/src/scaling.rs crates/bench/src/table1.rs

/root/repo/target/debug/deps/ulp_bench-159061d2c7c5432b: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/extensions.rs crates/bench/src/faults.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5a.rs crates/bench/src/fig5b.rs crates/bench/src/measure.rs crates/bench/src/scaling.rs crates/bench/src/table1.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/extensions.rs:
crates/bench/src/faults.rs:
crates/bench/src/fig3.rs:
crates/bench/src/fig4.rs:
crates/bench/src/fig5a.rs:
crates/bench/src/fig5b.rs:
crates/bench/src/measure.rs:
crates/bench/src/scaling.rs:
crates/bench/src/table1.rs:
