/root/repo/target/debug/deps/ulp_tools-9dcc090e49df2b17.d: crates/tools/src/lib.rs

/root/repo/target/debug/deps/libulp_tools-9dcc090e49df2b17.rlib: crates/tools/src/lib.rs

/root/repo/target/debug/deps/libulp_tools-9dcc090e49df2b17.rmeta: crates/tools/src/lib.rs

crates/tools/src/lib.rs:
