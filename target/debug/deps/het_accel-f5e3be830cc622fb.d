/root/repo/target/debug/deps/het_accel-f5e3be830cc622fb.d: src/lib.rs

/root/repo/target/debug/deps/libhet_accel-f5e3be830cc622fb.rlib: src/lib.rs

/root/repo/target/debug/deps/libhet_accel-f5e3be830cc622fb.rmeta: src/lib.rs

src/lib.rs:
