/root/repo/target/debug/deps/het_sim-68a9a6572e12a24c.d: crates/tools/src/bin/het-sim.rs Cargo.toml

/root/repo/target/debug/deps/libhet_sim-68a9a6572e12a24c.rmeta: crates/tools/src/bin/het-sim.rs Cargo.toml

crates/tools/src/bin/het-sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
