/root/repo/target/debug/deps/het_sim-f41f083dd9f59669.d: crates/tools/src/bin/het-sim.rs

/root/repo/target/debug/deps/het_sim-f41f083dd9f59669: crates/tools/src/bin/het-sim.rs

crates/tools/src/bin/het-sim.rs:
