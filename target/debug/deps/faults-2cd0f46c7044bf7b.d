/root/repo/target/debug/deps/faults-2cd0f46c7044bf7b.d: crates/bench/src/bin/faults.rs Cargo.toml

/root/repo/target/debug/deps/libfaults-2cd0f46c7044bf7b.rmeta: crates/bench/src/bin/faults.rs Cargo.toml

crates/bench/src/bin/faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
