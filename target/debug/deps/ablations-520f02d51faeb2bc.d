/root/repo/target/debug/deps/ablations-520f02d51faeb2bc.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-520f02d51faeb2bc: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
