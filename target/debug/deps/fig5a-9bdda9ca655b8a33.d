/root/repo/target/debug/deps/fig5a-9bdda9ca655b8a33.d: crates/bench/src/bin/fig5a.rs

/root/repo/target/debug/deps/fig5a-9bdda9ca655b8a33: crates/bench/src/bin/fig5a.rs

crates/bench/src/bin/fig5a.rs:
