/root/repo/target/debug/deps/ulp_power-ee6e40a6a5ed6e12.d: crates/power/src/lib.rs crates/power/src/interp.rs crates/power/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libulp_power-ee6e40a6a5ed6e12.rmeta: crates/power/src/lib.rs crates/power/src/interp.rs crates/power/src/model.rs Cargo.toml

crates/power/src/lib.rs:
crates/power/src/interp.rs:
crates/power/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
