/root/repo/target/debug/deps/end_to_end-0ebf5d0549994533.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-0ebf5d0549994533: tests/end_to_end.rs

tests/end_to_end.rs:
