/root/repo/target/debug/deps/uir_run-0294124252e6c2c4.d: crates/tools/src/bin/uir-run.rs Cargo.toml

/root/repo/target/debug/deps/libuir_run-0294124252e6c2c4.rmeta: crates/tools/src/bin/uir-run.rs Cargo.toml

crates/tools/src/bin/uir-run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
