/root/repo/target/debug/deps/uir_asm-c34d9ab86ae1d406.d: crates/tools/src/bin/uir-asm.rs

/root/repo/target/debug/deps/uir_asm-c34d9ab86ae1d406: crates/tools/src/bin/uir-asm.rs

crates/tools/src/bin/uir-asm.rs:
