/root/repo/target/debug/deps/faults-962bf544831691d5.d: crates/bench/src/bin/faults.rs

/root/repo/target/debug/deps/faults-962bf544831691d5: crates/bench/src/bin/faults.rs

crates/bench/src/bin/faults.rs:
