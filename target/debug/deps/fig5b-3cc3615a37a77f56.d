/root/repo/target/debug/deps/fig5b-3cc3615a37a77f56.d: crates/bench/src/bin/fig5b.rs Cargo.toml

/root/repo/target/debug/deps/libfig5b-3cc3615a37a77f56.rmeta: crates/bench/src/bin/fig5b.rs Cargo.toml

crates/bench/src/bin/fig5b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
