/root/repo/target/debug/deps/uir_asm-843bd74e6b73b6bb.d: crates/tools/src/bin/uir-asm.rs Cargo.toml

/root/repo/target/debug/deps/libuir_asm-843bd74e6b73b6bb.rmeta: crates/tools/src/bin/uir-asm.rs Cargo.toml

crates/tools/src/bin/uir-asm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
