/root/repo/target/debug/deps/het_accel-76f53ca75ebe5383.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhet_accel-76f53ca75ebe5383.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
