/root/repo/target/debug/deps/ulp_offload-491b674de2ce36a1.d: crates/core/src/lib.rs crates/core/src/envelope.rs crates/core/src/region.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libulp_offload-491b674de2ce36a1.rlib: crates/core/src/lib.rs crates/core/src/envelope.rs crates/core/src/region.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libulp_offload-491b674de2ce36a1.rmeta: crates/core/src/lib.rs crates/core/src/envelope.rs crates/core/src/region.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/envelope.rs:
crates/core/src/region.rs:
crates/core/src/system.rs:
