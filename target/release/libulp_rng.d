/root/repo/target/release/libulp_rng.rlib: /root/repo/crates/rng/src/lib.rs
