/root/repo/target/release/deps/ulp_kernels-3082943a5fb573f9.d: crates/kernels/src/lib.rs crates/kernels/src/cnn.rs crates/kernels/src/codegen/mod.rs crates/kernels/src/codegen/emit.rs crates/kernels/src/codegen/rtlib.rs crates/kernels/src/fixed.rs crates/kernels/src/hog.rs crates/kernels/src/matmul.rs crates/kernels/src/runner.rs crates/kernels/src/strassen.rs crates/kernels/src/streaming.rs crates/kernels/src/suite.rs crates/kernels/src/svm.rs

/root/repo/target/release/deps/libulp_kernels-3082943a5fb573f9.rlib: crates/kernels/src/lib.rs crates/kernels/src/cnn.rs crates/kernels/src/codegen/mod.rs crates/kernels/src/codegen/emit.rs crates/kernels/src/codegen/rtlib.rs crates/kernels/src/fixed.rs crates/kernels/src/hog.rs crates/kernels/src/matmul.rs crates/kernels/src/runner.rs crates/kernels/src/strassen.rs crates/kernels/src/streaming.rs crates/kernels/src/suite.rs crates/kernels/src/svm.rs

/root/repo/target/release/deps/libulp_kernels-3082943a5fb573f9.rmeta: crates/kernels/src/lib.rs crates/kernels/src/cnn.rs crates/kernels/src/codegen/mod.rs crates/kernels/src/codegen/emit.rs crates/kernels/src/codegen/rtlib.rs crates/kernels/src/fixed.rs crates/kernels/src/hog.rs crates/kernels/src/matmul.rs crates/kernels/src/runner.rs crates/kernels/src/strassen.rs crates/kernels/src/streaming.rs crates/kernels/src/suite.rs crates/kernels/src/svm.rs

crates/kernels/src/lib.rs:
crates/kernels/src/cnn.rs:
crates/kernels/src/codegen/mod.rs:
crates/kernels/src/codegen/emit.rs:
crates/kernels/src/codegen/rtlib.rs:
crates/kernels/src/fixed.rs:
crates/kernels/src/hog.rs:
crates/kernels/src/matmul.rs:
crates/kernels/src/runner.rs:
crates/kernels/src/strassen.rs:
crates/kernels/src/streaming.rs:
crates/kernels/src/suite.rs:
crates/kernels/src/svm.rs:
