/root/repo/target/release/deps/uir_dis-5f96ee4e2a7723bc.d: crates/tools/src/bin/uir-dis.rs

/root/repo/target/release/deps/uir_dis-5f96ee4e2a7723bc: crates/tools/src/bin/uir-dis.rs

crates/tools/src/bin/uir-dis.rs:
