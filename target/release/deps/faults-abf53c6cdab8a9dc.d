/root/repo/target/release/deps/faults-abf53c6cdab8a9dc.d: crates/bench/src/bin/faults.rs

/root/repo/target/release/deps/faults-abf53c6cdab8a9dc: crates/bench/src/bin/faults.rs

crates/bench/src/bin/faults.rs:
