/root/repo/target/release/deps/fig4-7776a96f7235b00b.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-7776a96f7235b00b: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
