/root/repo/target/release/deps/all_experiments-9cb67a9a0aa55628.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-9cb67a9a0aa55628: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
