/root/repo/target/release/deps/ulp_mcu-8dd4f31917100c1f.d: crates/mcu/src/lib.rs crates/mcu/src/device.rs crates/mcu/src/host.rs crates/mcu/src/wfe.rs

/root/repo/target/release/deps/libulp_mcu-8dd4f31917100c1f.rlib: crates/mcu/src/lib.rs crates/mcu/src/device.rs crates/mcu/src/host.rs crates/mcu/src/wfe.rs

/root/repo/target/release/deps/libulp_mcu-8dd4f31917100c1f.rmeta: crates/mcu/src/lib.rs crates/mcu/src/device.rs crates/mcu/src/host.rs crates/mcu/src/wfe.rs

crates/mcu/src/lib.rs:
crates/mcu/src/device.rs:
crates/mcu/src/host.rs:
crates/mcu/src/wfe.rs:
