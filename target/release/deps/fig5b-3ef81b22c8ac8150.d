/root/repo/target/release/deps/fig5b-3ef81b22c8ac8150.d: crates/bench/src/bin/fig5b.rs

/root/repo/target/release/deps/fig5b-3ef81b22c8ac8150: crates/bench/src/bin/fig5b.rs

crates/bench/src/bin/fig5b.rs:
