/root/repo/target/release/deps/ulp_bench-7bd81f3a477f26e7.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/extensions.rs crates/bench/src/faults.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5a.rs crates/bench/src/fig5b.rs crates/bench/src/measure.rs crates/bench/src/scaling.rs crates/bench/src/table1.rs

/root/repo/target/release/deps/libulp_bench-7bd81f3a477f26e7.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/extensions.rs crates/bench/src/faults.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5a.rs crates/bench/src/fig5b.rs crates/bench/src/measure.rs crates/bench/src/scaling.rs crates/bench/src/table1.rs

/root/repo/target/release/deps/libulp_bench-7bd81f3a477f26e7.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/extensions.rs crates/bench/src/faults.rs crates/bench/src/fig3.rs crates/bench/src/fig4.rs crates/bench/src/fig5a.rs crates/bench/src/fig5b.rs crates/bench/src/measure.rs crates/bench/src/scaling.rs crates/bench/src/table1.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/extensions.rs:
crates/bench/src/faults.rs:
crates/bench/src/fig3.rs:
crates/bench/src/fig4.rs:
crates/bench/src/fig5a.rs:
crates/bench/src/fig5b.rs:
crates/bench/src/measure.rs:
crates/bench/src/scaling.rs:
crates/bench/src/table1.rs:
