/root/repo/target/release/deps/het_sim-1131c576b74c255e.d: crates/tools/src/bin/het-sim.rs

/root/repo/target/release/deps/het_sim-1131c576b74c255e: crates/tools/src/bin/het-sim.rs

crates/tools/src/bin/het-sim.rs:
