/root/repo/target/release/deps/fig5a-e73bdd83d65fb886.d: crates/bench/src/bin/fig5a.rs

/root/repo/target/release/deps/fig5a-e73bdd83d65fb886: crates/bench/src/bin/fig5a.rs

crates/bench/src/bin/fig5a.rs:
