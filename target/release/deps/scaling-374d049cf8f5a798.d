/root/repo/target/release/deps/scaling-374d049cf8f5a798.d: crates/bench/src/bin/scaling.rs

/root/repo/target/release/deps/scaling-374d049cf8f5a798: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
