/root/repo/target/release/deps/ulp_rng-c9c19024a10a4ce2.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/libulp_rng-c9c19024a10a4ce2.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/libulp_rng-c9c19024a10a4ce2.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
