/root/repo/target/release/deps/ulp_power-87ee4861324f6a71.d: crates/power/src/lib.rs crates/power/src/interp.rs crates/power/src/model.rs

/root/repo/target/release/deps/libulp_power-87ee4861324f6a71.rlib: crates/power/src/lib.rs crates/power/src/interp.rs crates/power/src/model.rs

/root/repo/target/release/deps/libulp_power-87ee4861324f6a71.rmeta: crates/power/src/lib.rs crates/power/src/interp.rs crates/power/src/model.rs

crates/power/src/lib.rs:
crates/power/src/interp.rs:
crates/power/src/model.rs:
