/root/repo/target/release/deps/het_accel-bbd13b4d051026c3.d: src/lib.rs

/root/repo/target/release/deps/libhet_accel-bbd13b4d051026c3.rlib: src/lib.rs

/root/repo/target/release/deps/libhet_accel-bbd13b4d051026c3.rmeta: src/lib.rs

src/lib.rs:
