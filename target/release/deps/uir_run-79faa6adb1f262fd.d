/root/repo/target/release/deps/uir_run-79faa6adb1f262fd.d: crates/tools/src/bin/uir-run.rs

/root/repo/target/release/deps/uir_run-79faa6adb1f262fd: crates/tools/src/bin/uir-run.rs

crates/tools/src/bin/uir-run.rs:
