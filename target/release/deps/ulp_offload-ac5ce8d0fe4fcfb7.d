/root/repo/target/release/deps/ulp_offload-ac5ce8d0fe4fcfb7.d: crates/core/src/lib.rs crates/core/src/envelope.rs crates/core/src/region.rs crates/core/src/system.rs

/root/repo/target/release/deps/libulp_offload-ac5ce8d0fe4fcfb7.rlib: crates/core/src/lib.rs crates/core/src/envelope.rs crates/core/src/region.rs crates/core/src/system.rs

/root/repo/target/release/deps/libulp_offload-ac5ce8d0fe4fcfb7.rmeta: crates/core/src/lib.rs crates/core/src/envelope.rs crates/core/src/region.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/envelope.rs:
crates/core/src/region.rs:
crates/core/src/system.rs:
