/root/repo/target/release/deps/table1-70ecfe1b9ddf17fb.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-70ecfe1b9ddf17fb: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
