/root/repo/target/release/deps/ulp_cluster-21d1351dbf3dfc06.d: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/config.rs crates/cluster/src/dma.rs crates/cluster/src/event.rs crates/cluster/src/icache.rs crates/cluster/src/l2.rs crates/cluster/src/stats.rs crates/cluster/src/tcdm.rs

/root/repo/target/release/deps/libulp_cluster-21d1351dbf3dfc06.rlib: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/config.rs crates/cluster/src/dma.rs crates/cluster/src/event.rs crates/cluster/src/icache.rs crates/cluster/src/l2.rs crates/cluster/src/stats.rs crates/cluster/src/tcdm.rs

/root/repo/target/release/deps/libulp_cluster-21d1351dbf3dfc06.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/config.rs crates/cluster/src/dma.rs crates/cluster/src/event.rs crates/cluster/src/icache.rs crates/cluster/src/l2.rs crates/cluster/src/stats.rs crates/cluster/src/tcdm.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cluster.rs:
crates/cluster/src/config.rs:
crates/cluster/src/dma.rs:
crates/cluster/src/event.rs:
crates/cluster/src/icache.rs:
crates/cluster/src/l2.rs:
crates/cluster/src/stats.rs:
crates/cluster/src/tcdm.rs:
