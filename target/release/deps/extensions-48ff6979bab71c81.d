/root/repo/target/release/deps/extensions-48ff6979bab71c81.d: crates/bench/src/bin/extensions.rs

/root/repo/target/release/deps/extensions-48ff6979bab71c81: crates/bench/src/bin/extensions.rs

crates/bench/src/bin/extensions.rs:
