/root/repo/target/release/deps/ulp_isa-74df2b5a9d662f00.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/exec.rs crates/isa/src/features.rs crates/isa/src/insn.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/text.rs

/root/repo/target/release/deps/libulp_isa-74df2b5a9d662f00.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/exec.rs crates/isa/src/features.rs crates/isa/src/insn.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/text.rs

/root/repo/target/release/deps/libulp_isa-74df2b5a9d662f00.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/encode.rs crates/isa/src/exec.rs crates/isa/src/features.rs crates/isa/src/insn.rs crates/isa/src/mem.rs crates/isa/src/reg.rs crates/isa/src/text.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/encode.rs:
crates/isa/src/exec.rs:
crates/isa/src/features.rs:
crates/isa/src/insn.rs:
crates/isa/src/mem.rs:
crates/isa/src/reg.rs:
crates/isa/src/text.rs:
