/root/repo/target/release/deps/uir_asm-92485820506f94c9.d: crates/tools/src/bin/uir-asm.rs

/root/repo/target/release/deps/uir_asm-92485820506f94c9: crates/tools/src/bin/uir-asm.rs

crates/tools/src/bin/uir-asm.rs:
