/root/repo/target/release/deps/ulp_tools-92710a0b9631e566.d: crates/tools/src/lib.rs

/root/repo/target/release/deps/libulp_tools-92710a0b9631e566.rlib: crates/tools/src/lib.rs

/root/repo/target/release/deps/libulp_tools-92710a0b9631e566.rmeta: crates/tools/src/lib.rs

crates/tools/src/lib.rs:
