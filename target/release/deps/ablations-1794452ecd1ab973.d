/root/repo/target/release/deps/ablations-1794452ecd1ab973.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-1794452ecd1ab973: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
