/root/repo/target/release/deps/fig3-8fa0df3d5291c2f0.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-8fa0df3d5291c2f0: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
