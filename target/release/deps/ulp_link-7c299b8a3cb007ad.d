/root/repo/target/release/deps/ulp_link-7c299b8a3cb007ad.d: crates/link/src/lib.rs crates/link/src/crc.rs crates/link/src/fault.rs crates/link/src/frame.rs crates/link/src/spi.rs

/root/repo/target/release/deps/libulp_link-7c299b8a3cb007ad.rlib: crates/link/src/lib.rs crates/link/src/crc.rs crates/link/src/fault.rs crates/link/src/frame.rs crates/link/src/spi.rs

/root/repo/target/release/deps/libulp_link-7c299b8a3cb007ad.rmeta: crates/link/src/lib.rs crates/link/src/crc.rs crates/link/src/fault.rs crates/link/src/frame.rs crates/link/src/spi.rs

crates/link/src/lib.rs:
crates/link/src/crc.rs:
crates/link/src/fault.rs:
crates/link/src/frame.rs:
crates/link/src/spi.rs:
