/root/repo/target/release/examples/readme_fault_check-32e842fc7c05c60f.d: examples/readme_fault_check.rs

/root/repo/target/release/examples/readme_fault_check-32e842fc7c05c60f: examples/readme_fault_check.rs

examples/readme_fault_check.rs:
