/root/repo/target/release/examples/quickstart-04a6f51159e62727.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-04a6f51159e62727: examples/quickstart.rs

examples/quickstart.rs:
