#!/usr/bin/env bash
# Smoke-runs every user-facing binary and checks the committed golden
# snapshots, mirroring the `smoke` leg of the CI matrix. Runnable
# locally: `ci/smoke.sh`.
#
# Outputs:
#   ci-artifacts/          tool stdout, golden diffs, BENCH_simulator.json
#                          (gitignored; CI uploads it when the job fails)
#   $RUNNER_TEMP (or mktemp) scratch for files nobody needs afterwards —
#                          notably simperf's BENCH_reference.json, which
#                          used to be dropped untracked into the workspace
set -euo pipefail
cd "$(dirname "$0")/.."

ARTIFACTS=ci-artifacts
SCRATCH=${RUNNER_TEMP:-$(mktemp -d)}
mkdir -p "$ARTIFACTS"
rm -f "$ARTIFACTS"/*.diff "$ARTIFACTS"/*.actual

fail=0

# golden NAME EXPECTED ACTUAL — on mismatch, keep a unified diff and the
# actual bytes under ci-artifacts/ instead of losing them in the log.
golden() {
  local name=$1 expected=$2 actual=$3
  if diff -u "$expected" "$actual" > "$ARTIFACTS/$name.diff"; then
    rm -f "$ARTIFACTS/$name.diff"
    echo "golden ok : $name"
  else
    cp "$actual" "$ARTIFACTS/$name.actual"
    echo "GOLDEN DIVERGED: $name (diff kept at $ARTIFACTS/$name.diff)" >&2
    sed -n 1,40p "$ARTIFACTS/$name.diff" >&2
    fail=1
  fi
}

echo "== figures smoke =="
cargo run --release -q -p ulp-bench --bin table1 > /dev/null
cargo run --release -q -p ulp-bench --bin faults > /dev/null

echo "== trace smoke =="
cargo run --release -q -p ulp-tools --bin het-sim -- \
  --benchmark matmul --iterations 4 --double-buffer \
  --trace "$ARTIFACTS/trace.json" --counters | tee "$ARTIFACTS/sim.out"
# The export must be well-formed JSON...
python3 -m json.tool "$ARTIFACTS/trace.json" > /dev/null
# ...non-trivial (events recorded, counters busy)...
grep -q '"ph":"X"' "$ARTIFACTS/trace.json"
grep -E -q 'core0 +[1-9]' "$ARTIFACTS/sim.out"
# ...and the counters section must have been printed.
grep -q 'per-component utilization' "$ARTIFACTS/sim.out"

echo "== pipeline smoke =="
# The pipelined engine must engage on the CNN workload and print its
# overlap accounting; the study table must match the pinned snapshot.
cargo run --release -q -p ulp-tools --bin het-sim -- \
  --benchmark cnn --iterations 16 --pipeline --counters | tee "$ARTIFACTS/pipe.out"
grep -q 'pipeline  chunk' "$ARTIFACTS/pipe.out"
grep -q 'pipeline overlap (engine schedule):' "$ARTIFACTS/pipe.out"
cargo run --release -q -p ulp-bench --bin pipeline_table > "$SCRATCH/pipeline_table.txt"
golden pipeline_table tests/golden/pipeline_table.txt "$SCRATCH/pipeline_table.txt"

echo "== serve smoke =="
# The serving layer end to end: het-sim front-end with batching and
# fairness on, then the study binary against both committed snapshots
# (the plain-text table and BENCH_serve.json must re-render exactly).
cargo run --release -q -p ulp-tools --bin het-sim -- \
  --serve --benchmark matmul --pool 2 --tenants 2 --duration-ms 400 \
  --counters | tee "$ARTIFACTS/serve.out"
grep -q 'serve     : hot kernel matmul' "$ARTIFACTS/serve.out"
grep -q 'batching  : mean batch' "$ARTIFACTS/serve.out"
grep -q 'per tenant:' "$ARTIFACTS/serve.out"
grep -q 'per-worker utilization counters:' "$ARTIFACTS/serve.out"
cargo run --release -q -p ulp-bench --bin serve -- \
  --json "$SCRATCH/BENCH_serve.json" > "$SCRATCH/serve_table.txt"
golden serve_table tests/golden/serve_table.txt "$SCRATCH/serve_table.txt"
golden BENCH_serve BENCH_serve.json "$SCRATCH/BENCH_serve.json"

echo "== soak smoke =="
# Chaos end to end: het-sim soak mode with faults, a flash crowd, a
# blackout, and residency churn must conserve every request and report
# a clean invariant verdict; then the million-request study binary
# against both committed snapshots.
cargo run --release -q -p ulp-tools --bin het-sim -- \
  --soak --benchmark cnn --pool 4 --duration-ms 400 \
  --drop-rate 0.01 --hang-rate 0.005 --burst-factor 50 | tee "$ARTIFACTS/soak.out"
grep -q 'soak      : hot kernel cnn' "$ARTIFACTS/soak.out"
grep -q 'chaos (seed' "$ARTIFACTS/soak.out"
grep -q 'SLO ledger (tenant x class: finished/missed):' "$ARTIFACTS/soak.out"
grep -q 'invariants: OK' "$ARTIFACTS/soak.out"
cargo run --release -q -p ulp-bench --bin soak -- \
  --json "$SCRATCH/BENCH_soak.json" > "$SCRATCH/soak_table.txt"
golden soak_table tests/golden/soak_table.txt "$SCRATCH/soak_table.txt"
golden BENCH_soak BENCH_soak.json "$SCRATCH/BENCH_soak.json"

echo "== fleet smoke =="
# Fleet-scale serving end to end: a small autoscaled two-group fleet
# that records its request stream, a byte-identical record/replay round
# trip through a *different* sharding, and the fleet study binary
# against all three committed snapshots (table, BENCH_fleet.json, and
# the pinned autoscaler decision log).
cargo run --release -q -p ulp-tools --bin het-sim -- \
  --fleet --benchmark matmul --groups 2 --pool 2 --autoscale \
  --duration-ms 400 --record-trace "$SCRATCH/fleet.trc" | tee "$ARTIFACTS/fleet.out"
grep -q 'fleet     : hot kernel matmul' "$ARTIFACTS/fleet.out"
grep -q 'per group:' "$ARTIFACTS/fleet.out"
grep -q 'autoscaler:' "$ARTIFACTS/fleet.out"
grep -q 'invariants: OK' "$ARTIFACTS/fleet.out"
cargo run --release -q -p ulp-tools --bin het-sim -- \
  --fleet --benchmark matmul --groups 4 --pool 2 \
  --replay-trace "$SCRATCH/fleet.trc" \
  --record-trace "$SCRATCH/fleet-replayed.trc" | tee "$ARTIFACTS/fleet-replay.out"
grep -q 'replay    :' "$ARTIFACTS/fleet-replay.out"
grep -q 'invariants: OK' "$ARTIFACTS/fleet-replay.out"
# Re-recording the replayed stream must reproduce the trace exactly.
cmp "$SCRATCH/fleet.trc" "$SCRATCH/fleet-replayed.trc"
echo "replay ok : trace round trip byte-identical"
cargo run --release -q -p ulp-bench --bin fleet -- \
  --json "$SCRATCH/BENCH_fleet.json" \
  --scale-log "$SCRATCH/fleet_autoscale.txt" > "$SCRATCH/fleet_table.txt"
golden fleet_table tests/golden/fleet_table.txt "$SCRATCH/fleet_table.txt"
golden fleet_autoscale tests/golden/fleet_autoscale.txt "$SCRATCH/fleet_autoscale.txt"
golden BENCH_fleet BENCH_fleet.json "$SCRATCH/BENCH_fleet.json"

echo "== simulator perf smoke =="
# Tracks the simulator's own wall-clock cost. The shared runner is noisy,
# so this validates the tooling (report shape, engine bit-identity
# re-check, --jobs/--no-turbo paths) rather than asserting a speedup; the
# numbers land in the uploaded artifact for trend inspection. The
# reference-engine report is scratch output: nothing consumes it, so it
# stays out of the workspace.
cargo run --release -q -p ulp-bench --bin simperf -- \
  --jobs 2 --reps 1 --out "$ARTIFACTS/BENCH_simulator.json"
python3 -m json.tool "$ARTIFACTS/BENCH_simulator.json" > /dev/null
grep -q '"engine_comparison"' "$ARTIFACTS/BENCH_simulator.json"
grep -q '"engine_comparison_quad"' "$ARTIFACTS/BENCH_simulator.json"
grep -q '"core_peak"' "$ARTIFACTS/BENCH_simulator.json"
grep -q '"simulated_mips"' "$ARTIFACTS/BENCH_simulator.json"
# The fresh micro-op and epoch speedups must not regress below the
# committed window. This run is reps=1 on a noisy shared runner, so the
# gate applies a 0.6x safety factor: it catches "the engine stopped
# engaging" regressions (ratios collapsing toward 1x), not scheduler
# noise around the committed value.
python3 - "$ARTIFACTS/BENCH_simulator.json" BENCH_simulator.json <<'PYEOF'
import json, sys
fresh, committed = (json.load(open(p)) for p in sys.argv[1:3])
checks = [
    ("engine_comparison.microop_speedup",),
    ("engine_comparison.epoch_speedup",),
    ("engine_comparison_quad.epoch_over_microop",),
]
fail = False
for (path,) in checks:
    section, key = path.split(".")
    got, want = fresh[section][key], committed[section][key]
    floor = 0.6 * want
    status = "ok" if got >= floor else "REGRESSED"
    print(f"engine gate {status}: {path} fresh {got:.3f} vs committed {want:.3f} (floor {floor:.3f})")
    fail |= got < floor
sys.exit(1 if fail else 0)
PYEOF
cargo run --release -q -p ulp-bench --bin simperf -- \
  --no-turbo --skip-comparison --out "$SCRATCH/BENCH_reference.json"
python3 -m json.tool "$SCRATCH/BENCH_reference.json" > /dev/null

if [ "$fail" -ne 0 ]; then
  echo "smoke: golden snapshot(s) diverged — see $ARTIFACTS/" >&2
  exit 1
fi
echo "smoke: all checks passed"
